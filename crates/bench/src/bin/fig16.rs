//! Figure 16 + §7.4 — the Redis case study: memory footprint over time and
//! tail latencies under PMDK (no defrag), STW compaction, Mesh, and FFCCD.
//!
//! The four variants are independent runs (each builds its own pool), so
//! they fan out over `--jobs N` / `FFCCD_JOBS` host threads; the tables
//! print in fixed variant order once the fan-out joins, so the output is
//! job-count invariant.

use ffccd::{DefragConfig, DefragHeap, Scheme};
use ffccd_bench::{header, jobs, mib, rule, scale};
use ffccd_pmem::MachineConfig;
use ffccd_pmop::PoolConfig;
use ffccd_workloads::par::parallel_map;
use ffccd_workloads::redis::RedisLru;
use ffccd_workloads::util::KeyGen;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Variant {
    Pmdk,
    Stw,
    Mesh,
    Ffccd,
}

struct Outcome {
    series: Vec<(u64, u64)>, // (op, footprint)
    avg_footprint: f64,
    avg_live: f64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
}

fn run_variant(v: Variant) -> Outcome {
    let cap = (200 << 20) / scale() as u64; // 200 MB live cap, scaled
    let initial = 1_000_000 / scale();
    let extra = 500_000 / scale();
    let queries = 500_000 / scale();

    let mut redis = RedisLru::new(cap);
    let scheme = if v == Variant::Ffccd {
        Scheme::FfccdCheckLookup
    } else {
        Scheme::Baseline
    };
    let defrag = match v {
        Variant::Ffccd => DefragConfig {
            min_live_bytes: 1 << 14,
            cooldown_ops: 256,
            ..DefragConfig::normal(scheme)
        },
        _ => DefragConfig::baseline(),
    };
    let pool_cfg = PoolConfig {
        data_bytes: 64 << 20,
        os_page_size: 4096, // the paper uses 4 KB pages for this study
        machine: MachineConfig::default(),
    };
    let heap = DefragHeap::create(pool_cfg, RedisLru::registry(), defrag).expect("pool");
    let mut ctx = heap.ctx();
    let mut gc_ctx = heap.ctx();
    redis.setup(&heap, &mut ctx);
    let mut keys = KeyGen::new(0xF166);
    let mut series = Vec::new();
    let mut lat = Vec::new();
    let mut fp_sum = 0f64;
    let mut live_sum = 0f64;
    let mut samples = 0u64;
    let mut op_idx = 0u64;

    let mut tick = |heap: &DefragHeap,
                    ctx: &mut ffccd_pmem::Ctx,
                    gc_ctx: &mut ffccd_pmem::Ctx,
                    op_cycles: u64,
                    op_idx: &mut u64,
                    series: &mut Vec<(u64, u64)>,
                    lat: &mut Vec<u64>| {
        let mut cycles = op_cycles;
        match v {
            Variant::Pmdk => {}
            Variant::Ffccd => {
                if heap.in_cycle() {
                    heap.step_compaction(gc_ctx, 16);
                } else if (*op_idx).is_multiple_of(8) {
                    heap.maybe_defrag(gc_ctx);
                }
            }
            Variant::Stw => {
                // Periodic stop-the-world compaction when fragmented: the
                // whole pause lands on this operation's latency.
                if (*op_idx).is_multiple_of(64) && heap.pool().stats().frag_ratio > 1.5 {
                    let (pause, _) = heap.stw_compact(ctx);
                    cycles += pause;
                }
            }
            Variant::Mesh => {
                if (*op_idx).is_multiple_of(64) && heap.pool().stats().frag_ratio > 1.5 {
                    let (pause, _) = heap.mesh_compact(ctx);
                    cycles += pause;
                }
            }
        }
        lat.push(cycles);
        *op_idx += 1;
        if (*op_idx).is_multiple_of(16) {
            let st = heap.pool().stats();
            series.push((*op_idx, st.footprint_bytes));
            fp_sum += st.footprint_bytes as f64;
            live_sum += st.live_bytes as f64;
            samples += 1;
        }
    };

    // Phase 1: fill 1M keys (LRU keeps live at the cap). Value sizes sit
    // in the lower half of the 240–492 range; phase 3 drifts upward —
    // size-distribution drift is what defeats size-class hole reuse (it is
    // the motivating scenario for Redis activedefrag).
    for _ in 0..initial {
        let t0 = ctx.cycles();
        let k = keys.fresh();
        let vs = keys.value_size(240, 360);
        redis.set(&heap, &mut ctx, k, vs);
        let c = ctx.cycles() - t0;
        tick(
            &heap,
            &mut ctx,
            &mut gc_ctx,
            c,
            &mut op_idx,
            &mut series,
            &mut lat,
        );
    }
    // Phase 2: queries.
    for _ in 0..queries {
        let t0 = ctx.cycles();
        if let Some(k) = keys.pick(redis.keys()) {
            redis.get(&heap, &mut ctx, k);
        }
        let c = ctx.cycles() - t0;
        tick(
            &heap,
            &mut ctx,
            &mut gc_ctx,
            c,
            &mut op_idx,
            &mut series,
            &mut lat,
        );
    }
    // Phase 3: 500K more inserts — half fresh keys, half overwrites of
    // existing keys with re-sampled sizes (Redis SET of an existing key
    // reallocates the value; the size mismatch is what leaves holes).
    for i in 0..extra {
        let t0 = ctx.cycles();
        let k = if i % 2 == 0 {
            keys.fresh()
        } else {
            keys.pick(redis.keys()).unwrap_or_else(|| keys.fresh())
        };
        let vs = keys.value_size(360, 492);
        redis.set(&heap, &mut ctx, k, vs);
        let c = ctx.cycles() - t0;
        tick(
            &heap,
            &mut ctx,
            &mut gc_ctx,
            c,
            &mut op_idx,
            &mut series,
            &mut lat,
        );
    }
    // Phase 4: queries until the end.
    for _ in 0..queries {
        let t0 = ctx.cycles();
        if let Some(k) = keys.pick(redis.keys()) {
            redis.get(&heap, &mut ctx, k);
        }
        let c = ctx.cycles() - t0;
        tick(
            &heap,
            &mut ctx,
            &mut gc_ctx,
            c,
            &mut op_idx,
            &mut series,
            &mut lat,
        );
    }
    heap.exit(&mut gc_ctx);
    redis.validate(&heap, &mut ctx).expect("redis consistent");

    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    Outcome {
        series,
        avg_footprint: fp_sum / samples.max(1) as f64,
        avg_live: live_sum / samples.max(1) as f64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        max: pct(1.0),
    }
}

fn main() {
    header("Figure 16 / §7.4: Redis memory footprint and tail latency by scheme");
    let variants = [Variant::Pmdk, Variant::Stw, Variant::Mesh, Variant::Ffccd];
    let outcomes: Vec<Outcome> = parallel_map(&variants, jobs(), |_, &v| {
        eprintln!("[fig16] running {v:?}...");
        run_variant(v)
    });

    println!("footprint over time (MB):");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "op", "PMDK", "STW", "Mesh", "FFCCD"
    );
    let len = outcomes.iter().map(|o| o.series.len()).min().unwrap_or(0);
    for i in (0..len).step_by((len / 16).max(1)) {
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            outcomes[0].series[i].0,
            mib(outcomes[0].series[i].1 as f64),
            mib(outcomes[1].series[i].1 as f64),
            mib(outcomes[2].series[i].1 as f64),
            mib(outcomes[3].series[i].1 as f64),
        );
    }
    rule(72);
    let over = outcomes[0].avg_footprint - outcomes[0].avg_live;
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>10} {:>10} {:>10} {:>12}",
        "scheme", "avg fp(MB)", "live(MB)", "frag red. %", "p50", "p90", "p99", "max"
    );
    for (v, o) in variants.iter().zip(&outcomes) {
        let red = if over > 0.0 {
            (outcomes[0].avg_footprint - o.avg_footprint) / over * 100.0
        } else {
            0.0
        };
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>14.1} {:>10} {:>10} {:>10} {:>12}",
            format!("{v:?}"),
            mib(o.avg_footprint),
            mib(o.avg_live),
            red,
            o.p50,
            o.p90,
            o.p99,
            o.max
        );
    }
    println!();
    println!("(paper: FFCCD reduces Redis fragmentation 73.4% at 4.6% overhead; STW");
    println!(" jemalloc-style defrag reaches only 47.6% with tail latencies an order");
    println!(" of magnitude worse — 331/442/563 ms vs FFCCD's 11.2/22.1/34.8 ms)");
}
