//! Replays one crash site from a sweep or adversary failure triple.
//!
//! The crash-site sweep (`sec7_1`, section 7.1b) prints failures as
//! `(seed=0x…, site=N, op=M)`. This tool re-runs that exact crash in
//! isolation and reports the recovery + validation outcome:
//!
//! ```text
//! FFCCD_WORKLOAD=LL FFCCD_SCHEME=sfccd FFCCD_SEED=0x517e01 \
//!     FFCCD_SITE=171687 cargo run --release -p ffccd-bench --bin replay_site
//! ```
//!
//! The adversarial campaign (section 7.1c) prints
//! `(seed=0x…, site=N, subset=0xM)` triples; set `FFCCD_SUBSET=0xM` to
//! materialize exactly that maybe-persisted subset at the site before
//! recovering (without it, the base nothing-persisted image is used).
//!
//! The nested campaign (section 7.1d) prints
//! `(seed=0x…, site=OUTER/INNER, phase=recovery, subset=0xM)` probes: set
//! `FFCCD_SITE` to the outer site, `FFCCD_RECOVERY_SITE` to the recovery
//! site, and (optionally) `FFCCD_SUBSET` to the nested mask — the tool
//! captures the outer image, re-crashes its recovery at the recovery
//! site, materializes the subset and runs the idempotent-recovery oracle.
//!
//! The run configuration matches the campaigns', so the site ID resolves
//! to the same durability event and the mask to the same lattice entries.

use ffccd::Scheme;
use ffccd_bench::driver_config;
use ffccd_workloads::adversary::replay_adversary_subset_full;
use ffccd_workloads::driver::PhaseMix;
use ffccd_workloads::faults::replay_crash_site;
use ffccd_workloads::nested::replay_nested_subset_full;
use ffccd_workloads::{AvlTree, LinkedList, Pmemkv, Workload};

fn env(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex number")
    } else {
        s.parse().expect("number")
    }
}

fn main() {
    let workload = env("FFCCD_WORKLOAD").unwrap_or_else(|| "LL".into());
    let scheme = match env("FFCCD_SCHEME").as_deref() {
        Some("espresso") => Scheme::Espresso,
        Some("sfccd") => Scheme::Sfccd,
        Some("ffccd") => Scheme::FfccdFenceFree,
        None | Some("checklookup") => Scheme::FfccdCheckLookup,
        Some(other) => panic!("unknown scheme {other} (espresso|sfccd|ffccd|checklookup)"),
    };
    let seed = parse_u64(&env("FFCCD_SEED").expect("set FFCCD_SEED"));
    let site = parse_u64(&env("FFCCD_SITE").expect("set FFCCD_SITE"));

    let make: Box<dyn Fn() -> Box<dyn Workload>> = match workload.as_str() {
        "LL" => Box::new(|| Box::new(LinkedList::new())),
        "AVL" => Box::new(|| Box::new(AvlTree::new())),
        "pmemkv" => Box::new(|| Box::new(Pmemkv::new())),
        other => panic!("unknown workload {other} (LL|AVL|pmemkv)"),
    };

    // Must mirror sec7_1's sweep_campaign configuration exactly.
    let mut cfg = driver_config(scheme, false, seed);
    cfg.mix = PhaseMix {
        init: 1200,
        phase_ops: 900,
        phases: 3,
    };
    cfg.pool.data_bytes = 8 << 20;
    cfg.defrag.min_live_bytes = 1 << 12;

    if let Some(rec_site) = env("FFCCD_RECOVERY_SITE").as_deref().map(parse_u64) {
        let mask = env("FFCCD_SUBSET").as_deref().map(parse_u64).unwrap_or(0);
        println!(
            "replaying {workload} / {} seed=0x{seed:x} site={site}/{rec_site} \
             phase=recovery subset=0x{mask:x}",
            scheme.label()
        );
        match replay_nested_subset_full(&*make, scheme, seed, site, rec_site, mask, &cfg) {
            None => {
                println!("site {site}/{rec_site} never fired — wrong seed, workload or config?");
                std::process::exit(2);
            }
            Some(r) => {
                let (op, maybe_len) = (r.op, r.maybe_len);
                match r.outcome {
                    Ok(()) => println!(
                        "recovery site fired (outer op {op}, nested maybe set {maybe_len}): \
                         idempotent recovery + validation PASS"
                    ),
                    Err(msg) => {
                        println!(
                            "recovery site fired (outer op {op}, nested maybe set \
                             {maybe_len}): FAIL\n  {msg}"
                        );
                        std::process::exit(1);
                    }
                }
            }
        }
        return;
    }

    if let Some(mask) = env("FFCCD_SUBSET").as_deref().map(parse_u64) {
        println!(
            "replaying {workload} / {} seed=0x{seed:x} site={site} subset=0x{mask:x}",
            scheme.label()
        );
        match replay_adversary_subset_full(&*make, scheme, seed, site, mask, &cfg) {
            None => {
                println!("site {site} never fired — wrong seed, workload or config?");
                std::process::exit(2);
            }
            Some(r) => {
                let (op, maybe_len) = (r.op, r.maybe_len);
                match r.outcome {
                    Ok(()) => println!(
                        "site fired during op {op} (maybe set {maybe_len}): \
                         recovery + validation PASS"
                    ),
                    Err(msg) => {
                        println!(
                            "site fired during op {op} (maybe set {maybe_len}): FAIL\n  {msg}"
                        );
                        std::process::exit(1);
                    }
                }
            }
        }
        return;
    }

    println!(
        "replaying {workload} / {} seed=0x{seed:x} site={site}",
        scheme.label()
    );
    match replay_crash_site(&*make, scheme, seed, site, &cfg) {
        None => {
            println!("site {site} never fired — wrong seed, workload or config?");
            std::process::exit(2);
        }
        Some((op, Ok(()))) => {
            println!("site fired during op {op}: recovery + validation PASS");
        }
        Some((op, Err(msg))) => {
            println!("site fired during op {op}: FAIL\n  {msg}");
            std::process::exit(1);
        }
    }
}
