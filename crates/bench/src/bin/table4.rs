//! Table 4 — fragmentation effectiveness on concurrent PM data structures
//! and applications: BzTree and FPTree (1 and 4 threads), Echo, pmemkv.
//!
//! The six rows are independent runs (each builds its own pool), so they
//! fan out over `--jobs N` / `FFCCD_JOBS` host threads; rows print in
//! fixed order once the fan-out joins, so the output is job-count
//! invariant.

use ffccd::Scheme;
use ffccd_bench::{driver_config, header, jobs, mib, rule};
use ffccd_workloads::driver::{run, run_mt};
use ffccd_workloads::par::parallel_map;
use ffccd_workloads::{BzTree, Echo, FpTree, Pmemkv, Workload};

/// One table row: PMDK-reported MiB, actual live MiB, our footprint MiB,
/// and the fragmentation reduction percentage.
type Row = (f64, f64, f64, f64);

/// One row's recipe: label, workload factory, driver thread count, seed.
type Spec = (&'static str, fn() -> Box<dyn Workload>, usize, u64);

fn single(mut w: Box<dyn Workload>, seed: u64) -> Row {
    let base = run(&mut *w, &driver_config(Scheme::Baseline, true, seed));
    let ours = run(
        &mut *w,
        &driver_config(Scheme::FfccdCheckLookup, true, seed),
    );
    (
        mib(base.avg_footprint),
        mib(base.avg_live),
        mib(ours.avg_footprint),
        ours.fragmentation_reduction_vs(&base),
    )
}

fn multi(make: &dyn Fn() -> Box<dyn Workload>, seed: u64) -> Row {
    let base = run_mt(make, 4, &driver_config(Scheme::Baseline, true, seed));
    let ours = run_mt(
        make,
        4,
        &driver_config(Scheme::FfccdCheckLookup, true, seed),
    );
    (
        mib(base.avg_footprint),
        mib(base.avg_live),
        mib(ours.avg_footprint),
        ours.fragmentation_reduction_vs(&base),
    )
}

fn main() {
    header("Table 4: Fragmentation effectiveness for applications (2MB pages)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12}",
        "DS & App.", "PMDK(MB)", "Actual", "Ours", "Reduction%"
    );
    rule(60);
    let specs: [Spec; 6] = [
        ("BzTree", || Box::new(BzTree::new()), 1, 0x7AB41),
        ("BzTree (4T)", || Box::new(BzTree::new()), 4, 0x7AB42),
        ("FPTree", || Box::new(FpTree::new()), 1, 0x7AB43),
        ("FPTree (4T)", || Box::new(FpTree::new()), 4, 0x7AB44),
        ("Echo", || Box::new(Echo::new()), 1, 0x7AB45),
        ("pmemkv", || Box::new(Pmemkv::new()), 1, 0x7AB46),
    ];
    let rows: Vec<(&str, Row)> = parallel_map(&specs, jobs(), |_, &(name, make, threads, seed)| {
        let row = if threads > 1 {
            multi(&make, seed)
        } else {
            single(make(), seed)
        };
        (name, row)
    });
    let mut sums = [0.0f64; 4];
    for (name, (pmdk, actual, ours, red)) in &rows {
        println!("{name:<12} {pmdk:>10.2} {actual:>10.2} {ours:>10.2} {red:>12.1}");
        for (s, v) in sums.iter_mut().zip([*pmdk, *actual, *ours, *red]) {
            *s += v;
        }
    }
    rule(60);
    let n = rows.len() as f64;
    println!(
        "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>12.1}",
        "Avg.",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n
    );
    println!("(paper: reductions 36.0/36.5/44.6/44.0/28.2/46.4%, avg 39.3%; Echo's");
    println!(" bucket array pins memory; BzTree's COW+append fragments less)");
}
