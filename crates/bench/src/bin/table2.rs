//! Table 2 — simulation parameters actually in force.

use ffccd_bench::{header, rule};
use ffccd_pmem::MachineConfig;

fn main() {
    header("Table 2: Simulation parameters");
    let c = MachineConfig::default();
    let rows: Vec<(&str, String)> = vec![
        (
            "Cache hit latency (cycles)",
            c.cache_hit_latency.to_string(),
        ),
        ("Store hit latency", c.store_hit_latency.to_string()),
        ("DRAM latency", c.dram_latency.to_string()),
        ("PM read latency", c.pm_read_latency.to_string()),
        ("PM write drain cost / line", c.pm_write_cost.to_string()),
        ("WPQ latency", c.wpq_latency.to_string()),
        ("WPQ capacity (lines)", c.wpq_capacity.to_string()),
        ("Cache capacity (lines)", c.cache_capacity_lines.to_string()),
        ("clwb cost", c.clwb_cost.to_string()),
        ("L1 TLB entries", c.tlb_l1_entries.to_string()),
        ("L2 TLB entries", c.tlb_l2_entries.to_string()),
        ("TLB miss penalty", c.tlb_miss_penalty.to_string()),
        (
            "Bloom filter check (cycles)",
            c.bloom_check_latency.to_string(),
        ),
        ("Bloom filter miss", c.bloom_miss_latency.to_string()),
        ("PMFTLB latency", c.pmftlb_latency.to_string()),
        ("PMFTLB entries", c.pmftlb_entries.to_string()),
        ("RBB latency", c.rbb_latency.to_string()),
        ("RBB entries", c.rbb_entries.to_string()),
        ("In-memory bloom filters", c.bloom_filters.to_string()),
        (
            "Bloom filter size (bytes)",
            c.bloom_filter_bytes.to_string(),
        ),
    ];
    for (k, v) in rows {
        println!("{k:<34} {v:>12}");
    }
    rule(72);
    println!("(matches the paper's Table 2 where the simulator models the knob)");
}
