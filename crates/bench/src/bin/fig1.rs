//! Figure 1 — PM fragmentation worsens across runs of Echo.
//!
//! Three consecutive "runs" of the Echo key-value store over the *same*
//! pool (terminate + reopen between runs, like closing and restarting the
//! process). Each run churns the store; the fragmentation ratio the next
//! run inherits keeps growing, and throughput declines with it — the
//! paper's motivating observation.

use std::collections::BTreeSet;

use ffccd::{DefragConfig, DefragHeap};
use ffccd_bench::{header, rule, scale, HUGE_PAGE_SIM};
use ffccd_pmem::MachineConfig;
use ffccd_pmop::{PmPool, PoolConfig};
use ffccd_workloads::util::KeyGen;
use ffccd_workloads::{Echo, Workload};

struct RunStats {
    frag_end: f64,
    frag_avg: f64,
    cycles_per_op: f64,
}

fn churn(
    heap: &DefragHeap,
    w: &mut Echo,
    keys: &mut KeyGen,
    live: &mut BTreeSet<u64>,
    inserts: usize,
    deletes: usize,
) -> RunStats {
    let mut ctx = heap.ctx();
    let mut ops = 0u64;
    let mut frag_samples = Vec::new();
    let mut op = |insert: bool, w: &mut Echo, ctx: &mut ffccd_pmem::Ctx| {
        if insert {
            let k = keys.fresh();
            w.insert(heap, ctx, k, 128);
            live.insert(k);
        } else if let Some(k) = keys.pick(live) {
            w.delete(heap, ctx, k);
            live.remove(&k);
        }
        ops += 1;
        if ops.is_multiple_of(64) {
            frag_samples.push(heap.pool().stats().frag_ratio);
        }
    };
    for _ in 0..deletes {
        op(false, w, &mut ctx);
    }
    for _ in 0..inserts {
        op(true, w, &mut ctx);
    }
    let st = heap.pool().stats();
    RunStats {
        frag_end: st.frag_ratio,
        frag_avg: frag_samples.iter().sum::<f64>() / frag_samples.len().max(1) as f64,
        cycles_per_op: ctx.cycles() as f64 / ops.max(1) as f64,
    }
}

fn three_runs(page: u64, label: &str) {
    let n = 5_000_000 / scale();
    let churn_n = 4_000_000 / scale();
    let mut w = Echo::new();
    let pool_cfg = PoolConfig {
        data_bytes: 64 << 20,
        os_page_size: page,
        machine: MachineConfig::default(),
    };
    let mut heap =
        DefragHeap::create(pool_cfg, w.registry(), DefragConfig::baseline()).expect("pool");
    let mut ctx = heap.ctx();
    w.setup(&heap, &mut ctx);
    let mut keys = KeyGen::new(0xF161);
    let mut live = BTreeSet::new();
    // Initial population.
    for _ in 0..n {
        let k = keys.fresh();
        w.insert(&heap, &mut ctx, k, 128);
        live.insert(k);
    }
    let mut results = Vec::new();
    for run in 1..=3 {
        let st = churn(&heap, &mut w, &mut keys, &mut live, churn_n, churn_n);
        results.push(st);
        if run < 3 {
            // Clean shutdown + restart: the fragmentation is inherited.
            let image = heap.engine().crash_image();
            let pool = PmPool::open(image.restart(), w.registry()).expect("reopen");
            heap = DefragHeap::from_pool(pool, DefragConfig::baseline());
            let mut rctx = heap.ctx();
            w.reopen(&heap, &mut rctx);
        }
    }
    let t0 = results[0].cycles_per_op;
    println!("\n{label} pages:");
    println!("{:<12} {:>10} {:>10} {:>10}", "run", "1st", "2nd", "3rd");
    println!(
        "{:<12} {:>10.2} {:>10.2} {:>10.2}",
        "fragR (end)", results[0].frag_end, results[1].frag_end, results[2].frag_end
    );
    println!(
        "{:<12} {:>10.2} {:>10.2} {:>10.2}",
        "fragR (avg)", results[0].frag_avg, results[1].frag_avg, results[2].frag_avg
    );
    println!(
        "{:<12} {:>10.1} {:>10.1} {:>10.1}",
        "throughput",
        100.0,
        100.0 * t0 / results[1].cycles_per_op,
        100.0 * t0 / results[2].cycles_per_op
    );
}

fn main() {
    header("Figure 1: PM fragmentation worsens across runs of Echo");
    println!("(paper: fragR 1.36/1.77/2.23 at 4KB, 1.44/2.42/3.24 at 2MB;");
    println!(" throughput 100/89.7/78.1 at 4KB, 100/92.2/81.5 at 2MB)");
    three_runs(4096, "4KB");
    three_runs(HUGE_PAGE_SIM, "2MB (simulated)");
    rule(72);
}
