//! Figure 5 — baseline (Espresso-on-C/C++) GC overhead breakdown.
//!
//! (a) Espresso's defragmentation time as a percentage of the application's
//! execution time, per microbenchmark; (b) where that GC time goes —
//! dominated by the crash-consistent copy (memcpy + clwb + sfence) and the
//! barrier check/lookup, motivating the FFCCD design.

use ffccd::Scheme;
use ffccd_bench::{breakdown, header, microbenchmarks, rule, run_workload};

fn main() {
    header("Figure 5: Espresso (baseline crash-consistent GC) overhead breakdown");
    println!(
        "{:<6} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "GC/app%", "slowdown", "mark+sum", "copy", "chk+lkp", "state", "refs"
    );
    rule(76);
    let (mut tot_gc, mut tot_slow, mut n) = (0.0, 0.0, 0.0);
    for mut w in microbenchmarks() {
        let seed = 0xF15 + w.name().len() as u64;
        let base = run_workload(&mut *w, Scheme::Baseline, true, seed);
        let esp = run_workload(&mut *w, Scheme::Espresso, true, seed);
        let bd = breakdown(&esp, base.app_cycles);
        let slowdown = esp.app_cycles as f64 / base.app_cycles as f64;
        println!(
            "{:<6} {:>8.1}% {:>9.3} | {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            w.name(),
            bd.total_pct,
            slowdown,
            bd.mark_summary_pct,
            bd.copy_pct,
            bd.check_lookup_pct,
            bd.state_pct,
            bd.ref_pct
        );
        tot_gc += bd.total_pct;
        tot_slow += slowdown;
        n += 1.0;
    }
    rule(76);
    println!(
        "mean GC-over-app: {:.1}%  mean slowdown: {:.3}x",
        tot_gc / n,
        tot_slow / n
    );
    println!("(paper: Espresso slows PM programs by 16.5% on average — 22.1% GC");
    println!(" overhead over the application, dominated by the compacting copy)");
}
