//! §7.1 — crash-consistency fault-injection campaign.
//!
//! Runs every workload under each crash-consistent scheme with crash images
//! injected throughout the run; every image is recovered and validated with
//! both checkers (program-data consistency and GC-metadata consistency).
//! The paper executes one thousand injections across 26 settings; set
//! `FFCCD_INJECTIONS` to raise the per-setting count (default 12).

use ffccd::Scheme;
use ffccd_bench::{driver_config, header, rule};
use ffccd_workloads::driver::PhaseMix;
use ffccd_workloads::faults::run_fault_injection;
use ffccd_workloads::{
    AvlTree, BplusTree, BzTree, Echo, FpTree, LinkedList, Pmemkv, RbTree, StringSwap, Workload,
};

fn injections() -> u64 {
    std::env::var("FFCCD_INJECTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn main() {
    header("Section 7.1: crash-consistency fault injection");
    let factories: Vec<(&str, Box<dyn Fn() -> Box<dyn Workload>>)> = vec![
        ("LL", Box::new(|| Box::new(LinkedList::new()))),
        ("AVL", Box::new(|| Box::new(AvlTree::new()))),
        ("SS", Box::new(|| Box::new(StringSwap::new()))),
        ("BT", Box::new(|| Box::new(BplusTree::new()))),
        ("RBT", Box::new(|| Box::new(RbTree::new()))),
        ("BzTree", Box::new(|| Box::new(BzTree::new()))),
        ("FPTree", Box::new(|| Box::new(FpTree::new()))),
        ("Echo", Box::new(|| Box::new(Echo::new()))),
        ("pmemkv", Box::new(|| Box::new(Pmemkv::new()))),
    ];
    let schemes = [Scheme::Sfccd, Scheme::FfccdFenceFree, Scheme::FfccdCheckLookup];
    println!(
        "{:<8} {:<22} {:>10} {:>10} {:>10} {:>8}",
        "bench", "scheme", "injections", "mid-cycle", "undone", "result"
    );
    rule(76);
    let mut settings = 0;
    let mut failures = 0;
    for (name, make) in &factories {
        for (si, &scheme) in schemes.iter().enumerate() {
            let mut w = make();
            let seed = 0x7_1_0 + settings as u64 * 31 + si as u64;
            let mut cfg = driver_config(scheme, false, seed);
            cfg.mix = PhaseMix {
                init: 1200,
                phase_ops: 900,
                phases: 3,
            };
            cfg.defrag.min_live_bytes = 1 << 12;
            let report =
                run_fault_injection(&mut *w, &**make, scheme, seed, injections(), &cfg);
            let ok = report.failures.is_empty();
            println!(
                "{:<8} {:<22} {:>10} {:>10} {:>10} {:>8}",
                name,
                scheme.label(),
                report.injections,
                report.mid_cycle,
                report.undone_objects,
                if ok { "PASS" } else { "FAIL" }
            );
            if !ok {
                failures += 1;
                for f in report.failures.iter().take(3) {
                    println!("    {f}");
                }
            }
            settings += 1;
        }
    }
    // Concurrent data structures with 2/4/8 threads (paper §7.1 runs the
    // concurrent DS at 1, 2, 4 and 8 threads; the 1-thread rows are above).
    use ffccd_workloads::faults::run_mt_fault_injection;
    let concurrent: Vec<(&str, Box<dyn Fn() -> Box<dyn Workload>>)> = vec![
        ("BzTree", Box::new(|| Box::new(BzTree::new()))),
        ("FPTree", Box::new(|| Box::new(FpTree::new()))),
    ];
    for (name, make) in &concurrent {
        for threads in [2usize, 4, 8] {
            let scheme = Scheme::FfccdCheckLookup;
            let seed = 0x7_1_77 + settings as u64;
            let mut cfg = driver_config(scheme, false, seed);
            cfg.mix = PhaseMix {
                init: 1200,
                phase_ops: 900,
                phases: 3,
            };
            cfg.defrag.min_live_bytes = 1 << 12;
            let report =
                run_mt_fault_injection(&**make, threads, scheme, seed, injections(), &cfg);
            let ok = report.failures.is_empty();
            println!(
                "{:<8} {:<22} {:>10} {:>10} {:>10} {:>8}",
                format!("{name} {threads}T"),
                scheme.label(),
                report.injections,
                report.mid_cycle,
                report.undone_objects,
                if ok { "PASS" } else { "FAIL" }
            );
            if !ok {
                failures += 1;
                for f in report.failures.iter().take(3) {
                    println!("    {f}");
                }
            }
            settings += 1;
        }
    }
    rule(76);
    println!(
        "{settings} settings x {} injections: {}",
        injections(),
        if failures == 0 {
            "ALL PASS (paper: both GC schemes passed all tests)".to_owned()
        } else {
            format!("{failures} settings FAILED")
        }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
