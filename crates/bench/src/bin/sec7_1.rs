//! §7.1 — crash-consistency fault-injection campaign.
//!
//! Runs every workload under each crash-consistent scheme with crash images
//! injected throughout the run; every image is recovered and validated with
//! both checkers (program-data consistency and GC-metadata consistency).
//! The paper executes one thousand injections across 26 settings; set
//! `FFCCD_INJECTIONS` to raise the per-setting count (default 12).
//!
//! A second campaign sweeps *crash sites* — images captured right after
//! individual durability events (stores, clwb, sfence, WPQ traffic,
//! evictions, GC phase transitions) rather than at op boundaries; set
//! `FFCCD_SITE_BUDGET` for the per-setting capture budget (default 64)
//! and `FFCCD_SWEEP_ONLY=1` to run just the sweep (CI smoke).
//!
//! The sweep campaign fans its 12 settings out over `--jobs N` threads
//! (or `FFCCD_JOBS`; default 1). Every sweep pins the engine to its
//! single-bank deterministic mode, so the per-setting reports — and the
//! printed table, which is emitted in fixed setting order after the
//! fan-out joins — are identical at every job count.
//!
//! A third campaign (`--adversary`) goes one level deeper: at each
//! targeted crash site it enumerates *maybe-persisted subsets* — every
//! combination of dirty-cache and in-flight lines is a legal ADR
//! durability outcome — materializing up to `FFCCD_ADV_IMAGES` crash
//! images per site (default 64; exhaustive when the lattice fits) across
//! `FFCCD_ADV_SITES` sites per setting (default 8) and validating
//! recovery from each. Failures shrink to 1-minimal replayable
//! `(seed, site_id, subset_bitmask)` triples. `--adversary` runs just
//! this campaign; add `--smoke` for the CI geometry (4 sites × 32
//! images).
//!
//! A fifth campaign (`--thread-crash`, §7.1e) kills K of N mutator
//! *threads* — not the whole machine — at sampled durability-event
//! ordinals while the survivors drain, then runs the full checker suite
//! (op-log oracle with in-flight ambiguity, per-shard validation, arena
//! ownership audit, heap validation) and a whole-machine restart. Cells
//! cover 4 schemes × 4 workloads including the detectable queue, whose
//! per-op completion is decidable on restart. Failures shrink to
//! 1-minimal replayable `(seed, kill_site, victim)` triples. Add
//! `--smoke` for the CI geometry (2 single-kill runs per cell).
//!
//! A fourth campaign (`--nested`, §7.1d) crashes *recovery itself*: each
//! captured mutator-phase image is recovered with site tracking armed in
//! the recovery phase, up to `FFCCD_NESTED_SITES` recovery sites per
//! outer image (default 8) are captured across `FFCCD_NESTED_OUTER`
//! outer images (default 16), and up to `FFCCD_NESTED_IMAGES`
//! maybe-persisted subsets per recovery site (default 64) are
//! materialized. Each nested image must recover, pass both validators,
//! and satisfy the idempotence contract — a second `recover()` on the
//! recovered machine must be a byte-identical no-op. Failures shrink to
//! replayable `(seed, outer/recovery, subset)` probes. Add `--smoke` for
//! the CI geometry (6 outer × 3 sites × 16 images).

use ffccd::Scheme;
use ffccd_bench::{driver_config, header, jobs, rule};
use ffccd_workloads::adversary::{run_adversary_sweep, AdversaryPlan};
use ffccd_workloads::driver::PhaseMix;
use ffccd_workloads::faults::{run_crash_site_sweep, run_fault_injection, CrashPlan};
use ffccd_workloads::nested::{run_nested_crash_sweep_jobs, NestedPlan};
use ffccd_workloads::par::parallel_map;
use ffccd_workloads::thread_crash::{run_thread_crash_campaign, ThreadCrashSettings};
use ffccd_workloads::{
    AvlTree, BplusTree, BzTree, DetectableQueue, Echo, FpTree, LinkedList, Pmemkv, RbTree,
    StringSwap, Workload,
};

/// A boxed workload constructor, keyed by display name in the campaign
/// tables. `Send + Sync` so the sweep campaign can fan settings out
/// across threads.
type Factory = Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>;

fn injections() -> u64 {
    std::env::var("FFCCD_INJECTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn site_budget() -> u64 {
    std::env::var("FFCCD_SITE_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Crash-site sweep: 4 schemes x 3 workloads, each capturing up to
/// `FFCCD_SITE_BUDGET` images at durability-event granularity. Settings
/// fan out over `jobs` threads; rows print in fixed setting order once
/// the fan-out joins, so the output is job-count-invariant.
fn sweep_campaign(jobs: usize) -> u64 {
    header("Section 7.1b: crash-site sweep (durability-event granularity)");
    let factories: Vec<(&str, Factory)> = vec![
        ("LL", Box::new(|| Box::new(LinkedList::new()))),
        ("AVL", Box::new(|| Box::new(AvlTree::new()))),
        ("pmemkv", Box::new(|| Box::new(Pmemkv::new()))),
    ];
    let schemes = [
        Scheme::Espresso,
        Scheme::Sfccd,
        Scheme::FfccdFenceFree,
        Scheme::FfccdCheckLookup,
    ];
    println!(
        "{:<8} {:<22} {:>10} {:>9} {:>9} {:>10} {:>8}",
        "bench", "scheme", "sites", "targeted", "captured", "mid-cycle", "result"
    );
    rule(82);
    let budget = site_budget();
    let settings: Vec<(usize, usize)> = (0..factories.len())
        .flat_map(|wi| (0..schemes.len()).map(move |si| (wi, si)))
        .collect();
    let rows = parallel_map(&settings, jobs.max(1), |_, &(wi, si)| {
        let (name, make) = &factories[wi];
        let scheme = schemes[si];
        let seed = 0x517e00 + wi as u64 * 17 + si as u64;
        let mut cfg = driver_config(scheme, false, seed);
        cfg.mix = PhaseMix {
            init: 1200,
            phase_ops: 900,
            phases: 3,
        };
        cfg.pool.data_bytes = 8 << 20;
        cfg.defrag.min_live_bytes = 1 << 12;
        let plan = CrashPlan::new(seed, budget);
        let report = run_crash_site_sweep(&**make, scheme, &plan, &cfg);
        // The site space must be rich enough for a meaningful sweep,
        // every targeted site must fire on replay, and every image
        // must validate.
        let ok = report.failures.is_empty()
            && report.captured == report.targeted
            && (budget < 50 || report.targeted >= 50);
        let mut lines = vec![format!(
            "{:<8} {:<22} {:>10} {:>9} {:>9} {:>10} {:>8}",
            name,
            scheme.label(),
            report.total_sites,
            report.targeted,
            report.captured,
            report.mid_cycle,
            if ok { "PASS" } else { "FAIL" }
        )];
        if !ok {
            for f in report.failures.iter().take(3) {
                lines.push(format!(
                    "    {} during {}: {}{}",
                    f.triple(),
                    f.kind,
                    f.message,
                    if f.reproduced { " [reproduced]" } else { "" }
                ));
            }
        }
        (lines, u64::from(!ok))
    });
    let mut failures = 0;
    for (lines, failed) in rows {
        for line in lines {
            println!("{line}");
        }
        failures += failed;
    }
    rule(82);
    println!(
        "sweep: {} settings, budget {budget}, jobs {jobs}: {}",
        factories.len() * schemes.len(),
        if failures == 0 {
            "ALL PASS".to_owned()
        } else {
            format!("{failures} settings FAILED")
        }
    );
    failures
}

fn adv_sites(smoke: bool) -> u64 {
    std::env::var("FFCCD_ADV_SITES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 4 } else { 8 })
}

fn adv_images(smoke: bool) -> u64 {
    std::env::var("FFCCD_ADV_IMAGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 32 } else { 64 })
}

/// Adversarial persistence campaign: 4 schemes × 3 workloads; at each of
/// up to `FFCCD_ADV_SITES` captured sites, up to `FFCCD_ADV_IMAGES`
/// maybe-persisted subset images are materialized and recovered
/// (exhaustively when the lattice fits the budget, corner-biased seeded
/// sampling beyond). Settings fan out over `jobs` threads; rows print in
/// fixed setting order once the fan-out joins, so the output is
/// job-count-invariant.
fn adversary_campaign(jobs: usize, smoke: bool) -> u64 {
    header("Section 7.1c: adversarial persistence exploration (maybe-persisted subsets)");
    let factories: Vec<(&str, Factory)> = vec![
        ("LL", Box::new(|| Box::new(LinkedList::new()))),
        ("AVL", Box::new(|| Box::new(AvlTree::new()))),
        ("pmemkv", Box::new(|| Box::new(Pmemkv::new()))),
    ];
    let schemes = [
        Scheme::Espresso,
        Scheme::Sfccd,
        Scheme::FfccdFenceFree,
        Scheme::FfccdCheckLookup,
    ];
    println!(
        "{:<8} {:<22} {:>10} {:>6} {:>8} {:>7} {:>6} {:>9} {:>8}",
        "bench", "scheme", "sites", "capt", "images", "exhaust", "empty", "max-maybe", "result"
    );
    rule(92);
    let sites = adv_sites(smoke);
    let images = adv_images(smoke);
    let settings: Vec<(usize, usize)> = (0..factories.len())
        .flat_map(|wi| (0..schemes.len()).map(move |si| (wi, si)))
        .collect();
    let rows = parallel_map(&settings, jobs.max(1), |_, &(wi, si)| {
        let (name, make) = &factories[wi];
        let scheme = schemes[si];
        let seed = 0xadfe00 + wi as u64 * 17 + si as u64;
        let mut cfg = driver_config(scheme, false, seed);
        cfg.mix = PhaseMix {
            init: 1200,
            phase_ops: 900,
            phases: 3,
        };
        cfg.pool.data_bytes = 8 << 20;
        cfg.defrag.min_live_bytes = 1 << 12;
        let plan = AdversaryPlan::new(seed, sites, images);
        let report = run_adversary_sweep(&**make, scheme, &plan, &cfg);
        // Every targeted site must fire on replay, each contributes at
        // least its base image, and every subset must recover — or the
        // failure must shrink to a replayable minimal triple (still FAIL,
        // but actionable).
        let ok = report.failures.is_empty()
            && report.captured == report.targeted
            && report.images >= report.captured;
        let mut lines = vec![format!(
            "{:<8} {:<22} {:>10} {:>6} {:>8} {:>7} {:>6} {:>9} {:>8}",
            name,
            scheme.label(),
            report.total_sites,
            report.captured,
            report.images,
            report.exhaustive_sites,
            report.empty_lattices,
            report.max_maybe,
            if ok { "PASS" } else { "FAIL" }
        )];
        if !ok {
            for f in report.failures.iter().take(3) {
                lines.push(format!(
                    "    {} during {} (op {}, maybe {}): {}{}{}",
                    f.triple(),
                    f.kind,
                    f.op,
                    f.maybe_len,
                    f.message,
                    if f.minimal { " [1-minimal]" } else { "" },
                    if f.reproduced { " [reproduced]" } else { "" }
                ));
            }
        }
        (lines, u64::from(!ok), report.truncated_lattices)
    });
    let mut failures = 0;
    let mut truncated = 0;
    for (lines, failed, trunc) in rows {
        for line in lines {
            println!("{line}");
        }
        failures += failed;
        truncated += trunc;
    }
    rule(92);
    if truncated > 0 {
        println!(
            "adversary: {truncated} lattices extended beyond the 64-entry window \
             (slide it with FFCCD_ADV_WINDOW)"
        );
    }
    println!(
        "adversary: {} settings, {sites} sites x {images} images, jobs {jobs}: {}",
        factories.len() * schemes.len(),
        if failures == 0 {
            "ALL PASS (every explored durability outcome recovers)".to_owned()
        } else {
            format!("{failures} settings FAILED (triples above replay the minimal subsets)")
        }
    );
    failures
}

fn nested_outer(smoke: bool) -> u64 {
    std::env::var("FFCCD_NESTED_OUTER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 6 } else { 16 })
}

fn nested_sites(smoke: bool) -> u64 {
    std::env::var("FFCCD_NESTED_SITES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 3 } else { 8 })
}

fn nested_images(smoke: bool) -> u64 {
    std::env::var("FFCCD_NESTED_IMAGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 16 } else { 64 })
}

/// Nested-crash campaign (§7.1d): 4 schemes × 3 workloads; recovery runs
/// on captured outer images with site tracking armed, targeted recovery
/// sites are captured, and each nested maybe-persisted subset image must
/// recover idempotently and validate. Settings fan out over `jobs`
/// threads; each setting's sweep is single-job and deterministic, so rows
/// (printed in fixed setting order after the join) are job-count-invariant.
fn nested_campaign(jobs: usize, smoke: bool) -> u64 {
    header("Section 7.1d: nested-crash exploration (crashes inside recovery)");
    let factories: Vec<(&str, Factory)> = vec![
        ("LL", Box::new(|| Box::new(LinkedList::new()))),
        ("AVL", Box::new(|| Box::new(AvlTree::new()))),
        ("pmemkv", Box::new(|| Box::new(Pmemkv::new()))),
    ];
    let schemes = [
        Scheme::Espresso,
        Scheme::Sfccd,
        Scheme::FfccdFenceFree,
        Scheme::FfccdCheckLookup,
    ];
    println!(
        "{:<8} {:<22} {:>6} {:>7} {:>8} {:>6} {:>8} {:>7} {:>6} {:>6} {:>8}",
        "bench",
        "scheme",
        "outer",
        "nested",
        "rec-site",
        "capt",
        "images",
        "exhaust",
        "empty",
        "trunc",
        "result"
    );
    rule(102);
    let outer = nested_outer(smoke);
    let sites = nested_sites(smoke);
    let images = nested_images(smoke);
    let settings: Vec<(usize, usize)> = (0..factories.len())
        .flat_map(|wi| (0..schemes.len()).map(move |si| (wi, si)))
        .collect();
    let rows = parallel_map(&settings, jobs.max(1), |_, &(wi, si)| {
        let (name, make) = &factories[wi];
        let scheme = schemes[si];
        let seed = 0x9e57ed + wi as u64 * 17 + si as u64;
        let mut cfg = driver_config(scheme, false, seed);
        cfg.mix = PhaseMix {
            init: 1200,
            phase_ops: 900,
            phases: 3,
        };
        cfg.pool.data_bytes = 8 << 20;
        cfg.defrag.min_live_bytes = 1 << 12;
        let plan = NestedPlan::new(seed, outer, sites, images);
        let report = run_nested_crash_sweep_jobs(&**make, scheme, &plan, &cfg, 1);
        // Every targeted outer site must fire on replay, at least one
        // outer image must yield a non-quiescent recovery (else the
        // campaign explored nothing), and every nested image must pass
        // the idempotent-recovery oracle.
        let ok = report.failures.is_empty()
            && report.outer_captured == report.outer_targeted
            && report.nested_outer > 0
            && report.images >= report.captured;
        let mut lines = vec![format!(
            "{:<8} {:<22} {:>6} {:>7} {:>8} {:>6} {:>8} {:>7} {:>6} {:>6} {:>8}",
            name,
            scheme.label(),
            report.outer_captured,
            report.nested_outer,
            report.recovery_sites,
            report.captured,
            report.images,
            report.exhaustive_sites,
            report.empty_lattices,
            report.truncated_lattices,
            if ok { "PASS" } else { "FAIL" }
        )];
        if !ok {
            for f in report.failures.iter().take(3) {
                lines.push(format!(
                    "    {} during {} (op {}, maybe {}): {}{}{}",
                    f.triple(),
                    f.kind,
                    f.op,
                    f.maybe_len,
                    f.message,
                    if f.minimal { " [1-minimal]" } else { "" },
                    if f.reproduced { " [reproduced]" } else { "" }
                ));
            }
        }
        (lines, u64::from(!ok), report.truncated_lattices)
    });
    let mut failures = 0;
    let mut truncated = 0;
    for (lines, failed, trunc) in rows {
        for line in lines {
            println!("{line}");
        }
        failures += failed;
        truncated += trunc;
    }
    rule(102);
    if truncated > 0 {
        println!(
            "nested: {truncated} lattices extended beyond the 64-entry window \
             (slide it with FFCCD_ADV_WINDOW)"
        );
    }
    println!(
        "nested: {} settings, {outer} outer x {sites} sites x {images} images, jobs {jobs}: {}",
        factories.len() * schemes.len(),
        if failures == 0 {
            "ALL PASS (every explored nested crash recovers idempotently)".to_owned()
        } else {
            format!("{failures} settings FAILED (probes above replay the minimal subsets)")
        }
    );
    failures
}

/// Thread-crash campaign (§7.1e): 4 schemes × 4 workloads (including the
/// detectable queue, which forfeits the in-flight ambiguity); each cell
/// samples single-kill runs — plus double-kill runs in the full geometry —
/// under the seeded turn scheduler, so every failure reduces to a
/// replayable `(seed, kill_site, victim)` triple. Settings fan out over
/// `jobs` threads; rows print in fixed setting order once the fan-out
/// joins, so the output is job-count-invariant.
fn thread_crash_campaign(jobs: usize, smoke: bool) -> u64 {
    header("Section 7.1e: thread-crash exploration (K of N mutators die, survivors drain)");
    let factories: Vec<(&str, Factory)> = vec![
        ("LL", Box::new(|| Box::new(LinkedList::new()))),
        ("DQ", Box::new(|| Box::new(DetectableQueue::new()))),
        ("AVL", Box::new(|| Box::new(AvlTree::new()))),
        ("pmemkv", Box::new(|| Box::new(Pmemkv::new()))),
    ];
    let schemes = [
        Scheme::Espresso,
        Scheme::Sfccd,
        Scheme::FfccdFenceFree,
        Scheme::FfccdCheckLookup,
    ];
    println!(
        "{:<8} {:<22} {:>6} {:>7} {:>8} {:>9} {:>8}",
        "bench", "scheme", "runs", "fired", "unfired", "in-flight", "result"
    );
    rule(76);
    let settings: Vec<(usize, usize)> = (0..factories.len())
        .flat_map(|wi| (0..schemes.len()).map(move |si| (wi, si)))
        .collect();
    let rows = parallel_map(&settings, jobs.max(1), |_, &(wi, si)| {
        let (name, make) = &factories[wi];
        let scheme = schemes[si];
        let seed = 0x7c4a00 + wi as u64 * 17 + si as u64;
        let mut cell = if smoke {
            ThreadCrashSettings::smoke(seed)
        } else {
            ThreadCrashSettings::full(seed)
        };
        let mut report = run_thread_crash_campaign(&**make, scheme, &cell);
        if !smoke {
            // Two extra double-kill runs per cell: only survivors drain,
            // and failures still shrink to 1-minimal single-kill triples.
            cell.kills_per_run = 2;
            cell.runs = 2;
            let double = run_thread_crash_campaign(&**make, scheme, &cell);
            report.runs += double.runs;
            report.kills_fired += double.kills_fired;
            report.kills_unfired += double.kills_unfired;
            report.inflight_ops += double.inflight_ops;
            report.failures.extend(double.failures);
        }
        // Every cell must actually fire kills (a campaign that samples
        // only past-the-end sites explored nothing), and every run must
        // pass the checker suite — or fail with a replayable triple.
        let ok = report.failures.is_empty() && report.kills_fired > 0;
        let mut lines = vec![format!(
            "{:<8} {:<22} {:>6} {:>7} {:>8} {:>9} {:>8}",
            name,
            scheme.label(),
            report.runs,
            report.kills_fired,
            report.kills_unfired,
            report.inflight_ops,
            if ok { "PASS" } else { "FAIL" }
        )];
        if !ok {
            for f in report.failures.iter().take(3) {
                lines.push(format!("    {}: {}", f.triple(), f.error));
            }
        }
        (lines, u64::from(!ok))
    });
    let mut failures = 0;
    for (lines, failed) in rows {
        for line in lines {
            println!("{line}");
        }
        failures += failed;
    }
    rule(76);
    println!(
        "thread-crash: {} settings, jobs {jobs}: {}",
        factories.len() * schemes.len(),
        if failures == 0 {
            "ALL PASS (every surviving cohort drains to a consistent heap)".to_owned()
        } else {
            format!("{failures} settings FAILED (triples above replay the kills)")
        }
    );
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--thread-crash") {
        let smoke = args.iter().any(|a| a == "--smoke");
        if thread_crash_campaign(jobs(), smoke) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--nested") {
        let smoke = args.iter().any(|a| a == "--smoke");
        if nested_campaign(jobs(), smoke) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--adversary") {
        let smoke = args.iter().any(|a| a == "--smoke");
        if adversary_campaign(jobs(), smoke) > 0 {
            std::process::exit(1);
        }
        return;
    }
    let mut sweep_failures = 0;
    if std::env::var("FFCCD_SWEEP_ONLY").is_ok() {
        sweep_failures = sweep_campaign(jobs());
        if sweep_failures > 0 {
            std::process::exit(1);
        }
        return;
    }
    header("Section 7.1: crash-consistency fault injection");
    let factories: Vec<(&str, Factory)> = vec![
        ("LL", Box::new(|| Box::new(LinkedList::new()))),
        ("AVL", Box::new(|| Box::new(AvlTree::new()))),
        ("SS", Box::new(|| Box::new(StringSwap::new()))),
        ("BT", Box::new(|| Box::new(BplusTree::new()))),
        ("RBT", Box::new(|| Box::new(RbTree::new()))),
        ("BzTree", Box::new(|| Box::new(BzTree::new()))),
        ("FPTree", Box::new(|| Box::new(FpTree::new()))),
        ("Echo", Box::new(|| Box::new(Echo::new()))),
        ("pmemkv", Box::new(|| Box::new(Pmemkv::new()))),
    ];
    let schemes = [
        Scheme::Sfccd,
        Scheme::FfccdFenceFree,
        Scheme::FfccdCheckLookup,
    ];
    println!(
        "{:<8} {:<22} {:>10} {:>10} {:>10} {:>8}",
        "bench", "scheme", "injections", "mid-cycle", "undone", "result"
    );
    rule(76);
    let mut settings = 0;
    let mut failures = 0;
    for (name, make) in &factories {
        for (si, &scheme) in schemes.iter().enumerate() {
            let mut w = make();
            let seed = 0x7_1_0 + settings as u64 * 31 + si as u64;
            let mut cfg = driver_config(scheme, false, seed);
            cfg.mix = PhaseMix {
                init: 1200,
                phase_ops: 900,
                phases: 3,
            };
            cfg.defrag.min_live_bytes = 1 << 12;
            let report = run_fault_injection(&mut *w, &**make, scheme, seed, injections(), &cfg);
            let ok = report.failures.is_empty();
            println!(
                "{:<8} {:<22} {:>10} {:>10} {:>10} {:>8}",
                name,
                scheme.label(),
                report.injections,
                report.mid_cycle,
                report.undone_objects,
                if ok { "PASS" } else { "FAIL" }
            );
            if !ok {
                failures += 1;
                for f in report.failures.iter().take(3) {
                    println!("    {f}");
                }
            }
            settings += 1;
        }
    }
    // Concurrent data structures with 2/4/8 threads (paper §7.1 runs the
    // concurrent DS at 1, 2, 4 and 8 threads; the 1-thread rows are above).
    use ffccd_workloads::faults::run_mt_fault_injection;
    let concurrent: Vec<(&str, Factory)> = vec![
        ("BzTree", Box::new(|| Box::new(BzTree::new()))),
        ("FPTree", Box::new(|| Box::new(FpTree::new()))),
    ];
    for (name, make) in &concurrent {
        for threads in [2usize, 4, 8] {
            let scheme = Scheme::FfccdCheckLookup;
            let seed = 0x7177 + settings as u64;
            let mut cfg = driver_config(scheme, false, seed);
            cfg.mix = PhaseMix {
                init: 1200,
                phase_ops: 900,
                phases: 3,
            };
            cfg.defrag.min_live_bytes = 1 << 12;
            let report = run_mt_fault_injection(&**make, threads, scheme, seed, injections(), &cfg);
            let ok = report.failures.is_empty();
            println!(
                "{:<8} {:<22} {:>10} {:>10} {:>10} {:>8}",
                format!("{name} {threads}T"),
                scheme.label(),
                report.injections,
                report.mid_cycle,
                report.undone_objects,
                if ok { "PASS" } else { "FAIL" }
            );
            if !ok {
                failures += 1;
                for f in report.failures.iter().take(3) {
                    println!("    {f}");
                }
            }
            settings += 1;
        }
    }
    rule(76);
    println!(
        "{settings} settings x {} injections: {}",
        injections(),
        if failures == 0 {
            "ALL PASS (paper: both GC schemes passed all tests)".to_owned()
        } else {
            format!("{failures} settings FAILED")
        }
    );
    println!();
    sweep_failures += sweep_campaign(jobs());
    if failures + sweep_failures > 0 {
        std::process::exit(1);
    }
}
