//! Shared trajectory-report plumbing for the `bench_*` binaries.
//!
//! Each binary appends its results to a `BENCH_*.json` file (overwritten
//! per run) so successive commits leave a comparable trajectory. The
//! container ships no serde_json, so the writer and the schema validator
//! are hand-rolled here: every record carries the common columns
//! `{name, threads, ops_per_sec, wall_ms}`, optional benchmark-specific
//! numeric columns ([`Record::extra`]), and a trailing `git_rev`.

use std::time::Instant;

/// One output record; serialized as one flat JSON object.
pub struct Record {
    /// Row label (e.g. `engine_banked8`, `barrier_in_cycle`).
    pub name: String,
    /// Threads (or fan-out jobs) the row ran with.
    pub threads: usize,
    /// Primary throughput metric.
    pub ops_per_sec: f64,
    /// Wall-clock of the row, milliseconds.
    pub wall_ms: f64,
    /// Benchmark-specific numeric columns, serialized between `wall_ms`
    /// and `git_rev` in declaration order. Keys must match the
    /// `extra_keys` the benchmark validates with.
    pub extra: Vec<(&'static str, f64)>,
}

impl Record {
    /// A record with no benchmark-specific columns.
    pub fn new(name: &str, threads: usize, ops_per_sec: f64, wall_ms: f64) -> Self {
        Record {
            name: name.to_owned(),
            threads,
            ops_per_sec,
            wall_ms,
            extra: Vec::new(),
        }
    }
}

/// Times `f`, returning `(result, wall_ms)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1000.0)
}

/// Short git revision of the working tree, or `"unknown"`.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `records` as a JSON array, one object per line.
pub fn render_json(records: &[Record], rev: &str) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let mut extras = String::new();
        for (k, v) in &r.extra {
            extras.push_str(&format!("\"{k}\": {v:.3}, "));
        }
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"threads\": {}, \"ops_per_sec\": {:.2}, \
             \"wall_ms\": {:.3}, {}\"git_rev\": \"{}\"}}{}\n",
            json_escape(&r.name),
            r.threads,
            r.ops_per_sec,
            r.wall_ms,
            extras,
            json_escape(rev),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

// ---- schema validation (no serde_json in the container) --------------------

/// Minimal JSON value for the flat records the benchmarks emit.
#[derive(Debug, PartialEq)]
enum Val {
    Str(String),
    Num(f64),
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }
    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.s.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.i).ok_or("truncated escape")?;
                    self.i += 1;
                    out.push(match e {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => other as char,
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".to_owned())
    }
    fn number(&mut self) -> Result<f64, String> {
        self.ws();
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(c))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
    /// Parses a flat object of string/number values.
    fn object(&mut self) -> Result<Vec<(String, Val)>, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(pairs);
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = match self.peek() {
                Some(b'"') => Val::Str(self.string()?),
                _ => Val::Num(self.number()?),
            };
            pairs.push((key, val));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(pairs);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

/// Validates `text` as an array of records with exactly the schema
/// `{name: str, threads: int, ops_per_sec: num, wall_ms: num,
/// <extra_keys: num>, git_rev: str}`. Returns the record count.
pub fn validate_schema(text: &str, extra_keys: &[&str]) -> Result<usize, String> {
    let mut p = Parser::new(text);
    p.eat(b'[')?;
    let mut n = 0;
    if p.peek() == Some(b']') {
        return Err("no records emitted".to_owned());
    }
    loop {
        let obj = p.object()?;
        let field = |k: &str| -> Result<&Val, String> {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("record {n} missing key '{k}'"))
        };
        match field("name")? {
            Val::Str(_) => {}
            v => return Err(format!("record {n}: name must be a string, got {v:?}")),
        }
        match field("threads")? {
            Val::Num(t) if t.fract() == 0.0 && *t >= 1.0 => {}
            v => {
                return Err(format!(
                    "record {n}: threads must be a positive int, got {v:?}"
                ))
            }
        }
        for k in ["ops_per_sec", "wall_ms"].iter().chain(extra_keys) {
            match field(k)? {
                Val::Num(x) if x.is_finite() && *x >= 0.0 => {}
                v => {
                    return Err(format!(
                        "record {n}: {k} must be a finite number, got {v:?}"
                    ))
                }
            }
        }
        match field("git_rev")? {
            Val::Str(r) if !r.is_empty() => {}
            v => return Err(format!("record {n}: git_rev must be non-empty, got {v:?}")),
        }
        if obj.len() != 5 + extra_keys.len() {
            return Err(format!(
                "record {n}: expected exactly {} keys, got {}",
                5 + extra_keys.len(),
                obj.len()
            ));
        }
        n += 1;
        match p.peek() {
            Some(b',') => p.i += 1,
            Some(b']') => return Ok(n),
            _ => return Err(format!("expected ',' or ']' at byte {}", p.i)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_then_validate_roundtrips() {
        let records = vec![
            Record::new("engine_global", 1, 1234.5, 10.25),
            Record::new("sweep_jobs4", 4, 8.0, 900.0),
        ];
        let json = render_json(&records, "abc1234");
        assert_eq!(validate_schema(&json, &[]), Ok(2));
    }

    #[test]
    fn extra_columns_roundtrip_and_are_enforced() {
        let mut r = Record::new("barrier_in_cycle", 4, 5e6, 12.0);
        r.extra.push(("shared_reads_pct", 87.5));
        let json = render_json(&[r], "abc1234");
        // Validates with the matching extra key...
        assert_eq!(validate_schema(&json, &["shared_reads_pct"]), Ok(1));
        // ...but is rejected both without it (key count) and with a
        // different one (missing key).
        assert!(validate_schema(&json, &[]).is_err());
        assert!(validate_schema(&json, &["lock_acqs"]).is_err());
    }

    #[test]
    fn validator_rejects_missing_and_malformed_fields() {
        assert!(validate_schema("[]", &[]).is_err());
        assert!(validate_schema(r#"[{"name": "x", "threads": 1}]"#, &[]).is_err());
        let bad_threads = r#"[{"name": "x", "threads": 1.5, "ops_per_sec": 1,
            "wall_ms": 2, "git_rev": "r"}]"#;
        assert!(validate_schema(bad_threads, &[]).is_err());
        let ok = r#"[{"name": "x", "threads": 2, "ops_per_sec": 1.0,
            "wall_ms": 2.5, "git_rev": "r"}]"#;
        assert_eq!(validate_schema(ok, &[]), Ok(1));
    }
}
