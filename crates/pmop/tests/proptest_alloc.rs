//! Property tests of the pool allocator's invariants.

use proptest::prelude::*;

use ffccd_pmem::Ctx;
use ffccd_pmop::{PmPool, PmPtr, PoolConfig, TypeDesc, TypeRegistry, OBJ_HEADER_BYTES};

fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    reg.register(TypeDesc::new("blob", 0, &[]));
    reg
}

#[derive(Clone, Debug)]
enum Op {
    Alloc(u16),
    FreeNth(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (8u16..1500).prop_map(Op::Alloc),
            any::<u8>().prop_map(Op::FreeNth),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the alloc/free sequence: live objects never overlap, every
    /// live object is readable at its recorded size, accounting holds, and
    /// reopening from a crash image reconstructs the same live set.
    #[test]
    fn allocator_invariants(ops in ops(), seed in any::<u64>()) {
        let cfg = PoolConfig {
            data_bytes: 2 << 20,
            os_page_size: 4096,
            machine: ffccd_pmem::MachineConfig { seed, ..Default::default() },
        };
        let pool = PmPool::create(cfg, registry()).expect("create");
        let mut ctx = Ctx::new(pool.machine());
        let t = ffccd_pmop::TypeId(0);
        let mut live: Vec<(PmPtr, u16)> = Vec::new();
        let mut expected_bytes = 0u64;
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(p) = pool.pmalloc(&mut ctx, t, size as u64) {
                        // Stamp a recognizable first byte and persist it.
                        pool.write_bytes(&mut ctx, p, 0, &[0xAB]);
                        pool.persist(&mut ctx, p, 0, 1);
                        live.push((p, size));
                        expected_bytes += size as u64 + OBJ_HEADER_BYTES;
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (p, size) = live.swap_remove(n as usize % live.len());
                        pool.pfree(&mut ctx, p).expect("free live object");
                        expected_bytes -= size as u64 + OBJ_HEADER_BYTES;
                    }
                }
            }
        }
        // 1. accounting
        let st = pool.stats();
        prop_assert_eq!(st.live_bytes, expected_bytes);
        prop_assert!(st.footprint_bytes >= st.live_bytes || st.live_bytes == 0);
        // 2. no overlap: collect [start,end) of every live object
        let mut ranges: Vec<(u64, u64)> = live
            .iter()
            .map(|&(p, s)| (p.offset() - OBJ_HEADER_BYTES, p.offset() + s as u64))
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "objects overlap: {:?}", w);
        }
        // 3. headers agree
        for &(p, s) in &live {
            let (ty, size) = pool.peek_header(p);
            prop_assert_eq!(ty, t);
            prop_assert_eq!(size, s as u32);
        }
        // 4. reopen reconstructs the live set
        let img = pool.engine().crash_image();
        let pool2 = PmPool::open(img.restart(), registry()).expect("reopen");
        prop_assert_eq!(pool2.stats().live_bytes, expected_bytes);
        let mut ctx2 = Ctx::new(pool2.machine());
        for &(p, _) in &live {
            let mut b = [0u8; 1];
            pool2.read_bytes(&mut ctx2, p, 0, &mut b);
            prop_assert_eq!(b[0], 0xAB, "stamped byte lost across reopen");
        }
        // 5. every freed slot is reusable: fill until OOM must not panic
        for _ in 0..16 {
            let _ = pool2.pmalloc(&mut ctx2, t, 64);
        }
    }

    /// Double frees and garbage pointers are always rejected, never UB.
    #[test]
    fn invalid_frees_rejected(offset in 0u64..(1 << 20), seed in any::<u64>()) {
        let cfg = PoolConfig {
            data_bytes: 1 << 20,
            os_page_size: 4096,
            machine: ffccd_pmem::MachineConfig { seed, ..Default::default() },
        };
        let pool = PmPool::create(cfg, registry()).expect("create");
        let mut ctx = Ctx::new(pool.machine());
        let t = ffccd_pmop::TypeId(0);
        let p = pool.pmalloc(&mut ctx, t, 64).expect("alloc");
        pool.pfree(&mut ctx, p).expect("first free");
        prop_assert!(pool.pfree(&mut ctx, p).is_err(), "double free must fail");
        let garbage = PmPtr::new(1, offset | 1); // misaligned-ish
        if garbage != p {
            // Any outcome but success-on-a-live-object is fine; must not panic.
            let _ = pool.pfree(&mut ctx, garbage);
        }
    }
}
