//! Pool error type.

use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::PmPool`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// The pool's data region cannot satisfy the allocation.
    OutOfMemory {
        /// Bytes requested (header included).
        requested: u64,
    },
    /// A pointer did not reference a live object in this pool.
    InvalidPointer {
        /// The offending pointer's raw value.
        raw: u64,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The media does not contain a pool (bad magic) or the geometry
    /// disagrees with the registry/config.
    BadPool {
        /// Description of the mismatch.
        reason: &'static str,
    },
    /// Allocation larger than the supported maximum.
    AllocationTooLarge {
        /// Requested payload size.
        requested: u64,
        /// Maximum supported payload size.
        max: u64,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::OutOfMemory { requested } => {
                write!(f, "pool out of memory (requested {requested} bytes)")
            }
            PoolError::InvalidPointer { raw, reason } => {
                write!(f, "invalid persistent pointer {raw:#x}: {reason}")
            }
            PoolError::BadPool { reason } => write!(f, "not a valid pool: {reason}"),
            PoolError::AllocationTooLarge { requested, max } => {
                write!(
                    f,
                    "allocation of {requested} bytes exceeds maximum of {max}"
                )
            }
        }
    }
}

impl Error for PoolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = PoolError::OutOfMemory { requested: 64 };
        let s = e.to_string();
        assert!(s.starts_with("pool out of memory"));
        let e = PoolError::InvalidPointer {
            raw: 0x10,
            reason: "stale",
        };
        assert!(e.to_string().contains("stale"));
    }

    #[test]
    fn implements_error_send_sync() {
        fn assert_all<T: Error + Send + Sync + 'static>() {}
        assert_all::<PoolError>();
    }
}
