//! Typed allocation: the type registry that lets GC tell pointers from data.

use std::fmt;

/// Identifier of a registered object type; stored in every object header.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypeId(pub u32);

/// Layout description of one persistent object type.
///
/// `ref_offsets` are byte offsets *within the payload* of fields holding a
/// raw [`crate::PmPtr`]; the GC marking phase follows exactly those. Types
/// with variable payload (strings, arrays of bytes) keep their references,
/// if any, at fixed prefix offsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeDesc {
    /// Human-readable type name (diagnostics only).
    pub name: String,
    /// Payload size in bytes; `0` means variable-sized (taken from the
    /// object header at allocation time).
    pub payload_size: u32,
    /// Byte offsets of reference fields within the payload.
    pub ref_offsets: Vec<u32>,
}

impl TypeDesc {
    /// Creates a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if any reference offset is not 8-byte aligned or overflows a
    /// fixed payload.
    pub fn new(name: &str, payload_size: u32, ref_offsets: &[u32]) -> Self {
        for &off in ref_offsets {
            assert!(off % 8 == 0, "reference offsets must be 8-byte aligned");
            if payload_size != 0 {
                assert!(
                    off + 8 <= payload_size,
                    "reference at {off} exceeds payload of {payload_size}"
                );
            }
        }
        TypeDesc {
            name: name.to_owned(),
            payload_size,
            ref_offsets: ref_offsets.to_vec(),
        }
    }

    /// Whether the payload size is fixed at registration time.
    pub fn is_fixed_size(&self) -> bool {
        self.payload_size != 0
    }
}

/// Registry of all object types a pool can allocate.
///
/// PM programming models require creators to record type information for
/// future runs (paper §3.1, observation 2); the registry is that record.
#[derive(Clone, Debug, Default)]
pub struct TypeRegistry {
    descs: Vec<TypeDesc>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a type, returning its stable id.
    pub fn register(&mut self, desc: TypeDesc) -> TypeId {
        self.descs.push(desc);
        TypeId(self.descs.len() as u32 - 1)
    }

    /// Looks up a descriptor.
    ///
    /// # Panics
    ///
    /// Panics on an unregistered id — an unregistered id in an object header
    /// means heap corruption, which must fail loudly.
    pub fn get(&self, id: TypeId) -> &TypeDesc {
        self.descs
            .get(id.0 as usize)
            .unwrap_or_else(|| panic!("unregistered type id {id:?}"))
    }

    /// Looks up a descriptor, returning `None` for unregistered ids
    /// (validators probing possibly-corrupt headers).
    pub fn try_get(&self, id: TypeId) -> Option<&TypeDesc> {
        self.descs.get(id.0 as usize)
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// Whether no types are registered.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_get() {
        let mut reg = TypeRegistry::new();
        let a = reg.register(TypeDesc::new("a", 32, &[0, 8]));
        let b = reg.register(TypeDesc::new("b", 0, &[]));
        assert_ne!(a, b);
        assert_eq!(reg.get(a).name, "a");
        assert_eq!(reg.get(a).ref_offsets, vec![0, 8]);
        assert!(!reg.get(b).is_fixed_size());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_ref_panics() {
        let _ = TypeDesc::new("bad", 32, &[4]);
    }

    #[test]
    #[should_panic(expected = "exceeds payload")]
    fn overflowing_ref_panics() {
        let _ = TypeDesc::new("bad", 8, &[8]);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn unknown_id_panics() {
        let reg = TypeRegistry::new();
        let _ = reg.get(TypeId(3));
    }

    #[test]
    fn variable_size_allows_any_prefix_ref() {
        let d = TypeDesc::new("var", 0, &[0, 8, 16]);
        assert_eq!(d.ref_offsets.len(), 3);
    }
}
