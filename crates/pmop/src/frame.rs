//! Volatile per-frame allocator state: slot masks and run search.

/// Slots per 4 KiB frame (4096 / 16).
pub const SLOTS_PER_FRAME: usize = 256;

/// What a frame is currently used for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Never used or fully freed: available for allocation.
    Free,
    /// Holds ordinary allocations.
    Active,
    /// Selected by the GC summary phase; its live objects are moving out.
    Relocation,
    /// Receives relocated objects; slots were reserved by the summary phase.
    Destination,
    /// Part of a multi-frame (huge) allocation; never compacted.
    Huge,
}

/// Volatile mirror of one frame's allocation state.
///
/// The persistent truth is the 64-byte bitmap record in the pool media;
/// this mirror exists so the allocator does not pay simulated PM reads on
/// every slot search. It is rebuilt from the persistent record on open.
#[derive(Clone, Debug)]
pub struct FrameState {
    /// Current role.
    pub kind: FrameKind,
    /// Allocated-slot mask, 256 bits.
    pub alloc: [u64; 4],
    /// Object-start mask, 256 bits.
    pub start: [u64; 4],
    /// Number of free slots.
    pub free_slots: u16,
    /// Live payload+header bytes in this frame.
    pub live_bytes: u32,
    /// Relocation frame whose objects have all moved out: its OS page no
    /// longer counts toward the footprint, but the frame is not reusable
    /// until the cycle terminates (stale references may still be forwarded
    /// through the PMFT entry covering it).
    pub evacuated: bool,
    /// Allocation size class served by this frame (`None`: empty frames and
    /// GC destination frames, which mix sizes and are not refilled). PMDK
    /// segregates allocations into classes — a hole freed in one class
    /// cannot serve another class's allocation, the main fragmentation
    /// driver under variable-size values.
    pub class: Option<u8>,
}

impl Default for FrameState {
    fn default() -> Self {
        FrameState {
            kind: FrameKind::Free,
            alloc: [0; 4],
            start: [0; 4],
            free_slots: SLOTS_PER_FRAME as u16,
            live_bytes: 0,
            evacuated: false,
            class: None,
        }
    }
}

#[inline]
fn get_bit(mask: &[u64; 4], i: usize) -> bool {
    mask[i / 64] >> (i % 64) & 1 == 1
}

#[inline]
fn set_bit(mask: &mut [u64; 4], i: usize) {
    mask[i / 64] |= 1 << (i % 64);
}

#[inline]
fn clear_bit(mask: &mut [u64; 4], i: usize) {
    mask[i / 64] &= !(1 << (i % 64));
}

impl FrameState {
    /// Whether slot `i` is allocated.
    pub fn is_allocated(&self, i: usize) -> bool {
        get_bit(&self.alloc, i)
    }

    /// Whether slot `i` starts an object.
    pub fn is_start(&self, i: usize) -> bool {
        get_bit(&self.start, i)
    }

    /// Whether every slot of `[slot, slot+n)` is still free — the
    /// allocator's verify step between picking a candidate run and
    /// reserving it (a concurrent allocator may have claimed it since).
    pub fn is_run_free(&self, slot: usize, n: usize) -> bool {
        debug_assert!(slot + n <= SLOTS_PER_FRAME);
        (slot..slot + n).all(|i| !self.is_allocated(i))
    }

    /// Finds the first run of `n` contiguous free slots, or `None`.
    pub fn find_free_run(&self, n: usize) -> Option<usize> {
        debug_assert!((1..=SLOTS_PER_FRAME).contains(&n));
        let mut run = 0usize;
        for i in 0..SLOTS_PER_FRAME {
            if self.is_allocated(i) {
                run = 0;
            } else {
                run += 1;
                if run == n {
                    return Some(i + 1 - n);
                }
            }
        }
        None
    }

    /// Marks slots `[slot, slot+n)` allocated with an object start at `slot`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any slot is already allocated.
    pub fn mark_allocated(&mut self, slot: usize, n: usize, bytes: u32) {
        for i in slot..slot + n {
            debug_assert!(!self.is_allocated(i), "double allocation of slot {i}");
            set_bit(&mut self.alloc, i);
        }
        set_bit(&mut self.start, slot);
        self.free_slots -= n as u16;
        self.live_bytes += bytes;
        if self.kind == FrameKind::Free {
            self.kind = FrameKind::Active;
        }
    }

    /// Clears slots `[slot, slot+n)` and the start bit at `slot`.
    ///
    /// Only `Active` frames transition to `Free` when they empty: a
    /// `Destination` frame must stay reserved until its cycle terminates
    /// (the forwarding table still maps into it), and `Relocation`/`Huge`
    /// frames have their own teardown paths.
    pub fn mark_freed(&mut self, slot: usize, n: usize, bytes: u32) {
        for i in slot..slot + n {
            debug_assert!(self.is_allocated(i), "freeing unallocated slot {i}");
            clear_bit(&mut self.alloc, i);
        }
        clear_bit(&mut self.start, slot);
        self.free_slots += n as u16;
        self.live_bytes -= bytes;
        if self.free_slots as usize == SLOTS_PER_FRAME && self.kind == FrameKind::Active {
            self.kind = FrameKind::Free;
        }
    }

    /// Clears one slot (and any start bit on it) without byte accounting —
    /// recovery's tolerant teardown of partially-persisted reservations.
    pub fn mark_freed_single(&mut self, slot: usize) {
        if get_bit(&self.alloc, slot) {
            clear_bit(&mut self.alloc, slot);
            self.free_slots += 1;
        }
        clear_bit(&mut self.start, slot);
        if self.free_slots as usize == SLOTS_PER_FRAME {
            self.kind = FrameKind::Free;
        }
    }

    /// Iterates the slot indices where objects start.
    pub fn start_slots(&self) -> impl Iterator<Item = usize> + '_ {
        (0..SLOTS_PER_FRAME).filter(|&i| self.is_start(i))
    }

    /// Serializes the two masks into the 64-byte persistent record format.
    pub fn to_record(&self) -> [u8; 64] {
        let mut rec = [0u8; 64];
        for (i, w) in self.alloc.iter().enumerate() {
            rec[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        for (i, w) in self.start.iter().enumerate() {
            rec[32 + i * 8..32 + i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        rec
    }

    /// Rebuilds masks (not kind/live bytes) from a persistent record.
    pub fn from_record(rec: &[u8; 64]) -> Self {
        let mut st = FrameState::default();
        for i in 0..4 {
            st.alloc[i] = u64::from_le_bytes(rec[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            st.start[i] =
                u64::from_le_bytes(rec[32 + i * 8..32 + i * 8 + 8].try_into().expect("8 bytes"));
        }
        let used = st.alloc.iter().map(|w| w.count_ones()).sum::<u32>();
        st.free_slots = (SLOTS_PER_FRAME as u32 - used) as u16;
        if used > 0 {
            st.kind = FrameKind::Active;
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_frame_is_all_free() {
        let f = FrameState::default();
        assert_eq!(f.kind, FrameKind::Free);
        assert_eq!(f.free_slots as usize, SLOTS_PER_FRAME);
        assert_eq!(f.find_free_run(256), Some(0));
    }

    #[test]
    fn allocate_then_free_roundtrip() {
        let mut f = FrameState::default();
        f.mark_allocated(10, 9, 144);
        assert_eq!(f.kind, FrameKind::Active);
        assert!(f.is_allocated(10) && f.is_allocated(18));
        assert!(!f.is_allocated(19));
        assert!(f.is_start(10) && !f.is_start(11));
        assert_eq!(f.free_slots as usize, SLOTS_PER_FRAME - 9);
        assert_eq!(f.live_bytes, 144);
        f.mark_freed(10, 9, 144);
        assert_eq!(f.kind, FrameKind::Free);
        assert_eq!(f.live_bytes, 0);
    }

    #[test]
    fn find_free_run_skips_holes() {
        let mut f = FrameState::default();
        f.mark_allocated(0, 4, 64);
        f.mark_allocated(6, 4, 64);
        // Slots 4,5 free: a run of 2 fits there, 3 must go after slot 9.
        assert_eq!(f.find_free_run(2), Some(4));
        assert_eq!(f.find_free_run(3), Some(10));
    }

    #[test]
    fn find_free_run_none_when_full() {
        let mut f = FrameState::default();
        f.mark_allocated(0, 256, 4096);
        assert_eq!(f.find_free_run(1), None);
    }

    #[test]
    fn run_across_word_boundary() {
        let mut f = FrameState::default();
        // Fill everything except slots 62..66 (straddles the u64 boundary).
        f.mark_allocated(0, 62, 992);
        f.mark_allocated(66, 190, 3040);
        assert_eq!(f.find_free_run(4), Some(62));
        assert_eq!(f.find_free_run(5), None);
    }

    #[test]
    fn record_roundtrip() {
        let mut f = FrameState::default();
        f.mark_allocated(3, 5, 80);
        f.mark_allocated(100, 20, 320);
        let rec = f.to_record();
        let g = FrameState::from_record(&rec);
        assert_eq!(g.alloc, f.alloc);
        assert_eq!(g.start, f.start);
        assert_eq!(g.free_slots, f.free_slots);
        assert_eq!(g.kind, FrameKind::Active);
    }

    #[test]
    fn start_slots_enumerates_objects() {
        let mut f = FrameState::default();
        f.mark_allocated(0, 2, 32);
        f.mark_allocated(2, 2, 32);
        f.mark_allocated(200, 10, 160);
        let starts: Vec<_> = f.start_slots().collect();
        assert_eq!(starts, vec![0, 2, 200]);
    }
}
