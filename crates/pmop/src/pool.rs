//! The persistent memory object pool: allocation, roots, typed objects,
//! fragmentation accounting.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use ffccd_pmem::{Ctx, MachineConfig, PmEngine};

use crate::error::PoolError;
use crate::frame::{FrameKind, FrameState, SLOTS_PER_FRAME};
use crate::layout::{
    PoolLayout, FRAME_BYTES, HDR_MAGIC, HDR_NUM_FRAMES, HDR_OS_PAGE, HDR_ROOT, HDR_SHARDS,
    MAX_SHARDS, OBJ_HEADER_BYTES, POOL_MAGIC, SLOT_BYTES,
};
use crate::ptr::PmPtr;
use crate::types::{TypeId, TypeRegistry};

/// Configuration for creating a pool.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Bytes of object heap (rounded up to whole OS pages).
    pub data_bytes: u64,
    /// OS page size for footprint accounting: 4 KiB or 2 MiB (any multiple
    /// of 4 KiB is accepted).
    pub os_page_size: u64,
    /// Machine timing parameters.
    pub machine: MachineConfig,
}

impl PoolConfig {
    /// A 1 MiB pool with 4 KiB pages — handy in unit tests.
    pub fn small_for_tests() -> Self {
        PoolConfig {
            data_bytes: 1 << 20,
            os_page_size: 4096,
            machine: MachineConfig::default(),
        }
    }
}

/// Aggregate pool statistics (the paper's fragmentation metrics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PoolStats {
    /// Bytes in live objects (headers included).
    pub live_bytes: u64,
    /// Bytes of committed OS pages — the "memory footprint" of Figure 1.
    pub footprint_bytes: u64,
    /// Committed OS pages.
    pub committed_pages: u64,
    /// footprint / live — the paper's `fragR` (∞ avoided: 1.0 when empty).
    pub frag_ratio: f64,
}

/// One object found in a frame (GC enumeration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameObject {
    /// Pointer to the payload.
    pub ptr: PmPtr,
    /// Declared type.
    pub type_id: TypeId,
    /// Payload size in bytes.
    pub size: u32,
    /// First slot (16-byte units from frame start).
    pub slot: usize,
    /// Slots occupied (header + payload, rounded up).
    pub slots: usize,
}

#[derive(Debug)]
struct OsPage {
    committed: bool,
    used_frames: u32,
}

/// Size classes in 16-byte slots (≈1.2× geometric steps, as PMDK's
/// allocation classes). An allocation is served only by frames of its own
/// class; a hole freed in one class cannot serve another class — the main
/// source of long-lived fragmentation under variable-size values.
const CLASS_SLOTS: [u16; 26] = [
    1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 17, 20, 24, 29, 35, 42, 50, 60, 72, 86, 103, 124, 149, 179,
    215,
];

fn class_of(slots: usize) -> u8 {
    CLASS_SLOTS
        .iter()
        .position(|&c| slots <= c as usize)
        .unwrap_or(CLASS_SLOTS.len()) as u8
}

#[derive(Debug)]
struct AllocInner {
    frames: Vec<FrameState>,
    os_pages: Vec<OsPage>,
    /// Per-class frames with free slots, excluding any arena's active frame.
    partial: std::collections::HashMap<u8, Vec<u32>>,
    /// Fully free frames available for (re)use.
    free_frames: Vec<u32>,
    /// Current bump-allocation frame per (arena, class). Concurrent
    /// mutator threads allocate from distinct arenas ([`Ctx::arena`]), so
    /// their bump pointers do not fight over one frame; arena 0 alone
    /// reproduces the single-arena allocator exactly.
    active: std::collections::HashMap<(u32, u8), u32>,
    committed_pages: u64,
    live_bytes: u64,
}

impl AllocInner {
    /// Removes every allocator reference to `frame` (lists + active slots).
    fn purge(&mut self, frame: u32) {
        for v in self.partial.values_mut() {
            v.retain(|&x| x != frame);
        }
        self.active.retain(|_, &mut f| f != frame);
        self.free_frames.retain(|&x| x != frame);
    }
}

/// A persistent memory object pool (PMOP).
///
/// See the crate docs for the programming model. All mutating operations are
/// thread-safe; simulated memory traffic is charged to the caller's [`Ctx`].
pub struct PmPool {
    engine: PmEngine,
    layout: PoolLayout,
    registry: TypeRegistry,
    /// Per-shard allocator state. Shard `s` owns every frame whose OS page
    /// index is ≡ `s (mod nshards)`; a shard's lists, active map and page
    /// accounting reference **only** its own frames, so allocation on one
    /// shard never contends with allocation — or a GC cycle — on another.
    /// Each shard keeps full-length `frames`/`os_pages` vectors for simple
    /// indexing; only owner entries are ever read or written. One shard
    /// reproduces the pre-sharding single-lock allocator exactly.
    shards: Box<[Mutex<AllocInner>]>,
    nshards: usize,
    /// Serializes cross-shard frame hand-off (work stealing) when a shard's
    /// free frames are exhausted. Taken only with no shard lock held; the
    /// donor's own lock then covers the transfer, so the stolen frame never
    /// leaves its owner's bookkeeping.
    steal_lock: Mutex<()>,
    /// Striped per-frame commit locks (`frame % RECORD_STRIPES`). A
    /// thread persisting a frame's bitmap record holds the frame's stripe
    /// from *before* it reserves slots until *after* the record write, so
    /// (a) two allocators can never claim the same run (the reservation
    /// is verified and applied under the stripe), and (b) same-frame
    /// records always persist in reservation order — a slot shows up in a
    /// durable record only after its object header is durable. Lock order
    /// is stripe → `inner`, never the reverse.
    record_stripes: Box<[Mutex<()>]>,
    base: AtomicU64,
    pool_id: u16,
}

impl std::fmt::Debug for PmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmPool")
            .field("layout", &self.layout)
            .field("stats", &self.stats())
            .finish()
    }
}

/// How many candidate partial frames the allocator inspects before giving up
/// and taking a fresh frame. Real allocators bound this search the same way;
/// the bound is one source of long-lived fragmentation.
const PARTIAL_SCAN_LIMIT: usize = 32;

/// Number of per-frame commit-lock stripes (see [`PmPool::record_stripes`]).
const RECORD_STRIPES: usize = 64;

/// Maximum payload of a non-huge object: it must fit one frame with header.
pub(crate) const MAX_SMALL_PAYLOAD: u64 = FRAME_BYTES - OBJ_HEADER_BYTES;

/// Unwind guard for `commit_alloc` (thread-crash fault model): a thread
/// killed between marking its slots allocated and completing the object
/// header write would otherwise leave volatile-allocated slots behind a
/// stale garbage header, which the next sweep would then free *by that
/// header* — with an out-of-bounds huge-free in the worst case. Dropping
/// while armed rolls the volatile reservation back, mirroring how
/// machine-crash recovery drops slots whose record never became durable.
struct UndoAlloc<'a> {
    pool: &'a PmPool,
    frame: u32,
    slot: usize,
    n: usize,
    total: u64,
    armed: bool,
}

impl Drop for UndoAlloc<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.pool
                .undo_alloc_volatile(self.frame, self.slot, self.n, self.total);
        }
    }
}

/// Unwind guard for `pmalloc_huge`: same hazard and discipline as
/// [`UndoAlloc`], but the rollback returns the whole reserved frame run to
/// the free lists (the run was carved from free frames, so nothing else
/// can have touched it while the guard is armed).
struct UndoHugeAlloc<'a> {
    pool: &'a PmPool,
    first: u32,
    frames: u32,
    total: u64,
    armed: bool,
}

impl Drop for UndoHugeAlloc<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for f in self.first..self.first + self.frames {
            let mut inner = self.pool.inner_of_frame(f as u64).lock();
            let st = &mut inner.frames[f as usize];
            st.kind = FrameKind::Free;
            st.alloc = [0; 4];
            st.start = [0; 4];
            st.free_slots = SLOTS_PER_FRAME as u16;
            st.live_bytes = 0;
            st.class = None;
            inner.free_frames.push(f);
            let page = self.pool.layout.os_page_of_frame(f as u64) as usize;
            inner.os_pages[page].used_frames -= 1;
        }
        self.pool
            .inner_of_frame(self.first as u64)
            .lock()
            .live_bytes -= self.total;
    }
}

impl PmPool {
    // ---- lifecycle ----------------------------------------------------------

    /// Creates and formats a fresh pool.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::BadPool`] if the configuration is degenerate.
    pub fn create(cfg: PoolConfig, registry: TypeRegistry) -> Result<Self, PoolError> {
        Self::create_sharded(cfg, registry, 1)
    }

    /// [`PmPool::create`] with `shards` independent allocator shards (GC
    /// domains). The shard count is clamped to `1..=`[`MAX_SHARDS`] and
    /// recorded in the pool header — but only when it exceeds one, so
    /// single-shard media stays byte-identical with pre-sharding pools.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::BadPool`] if the configuration is degenerate.
    pub fn create_sharded(
        cfg: PoolConfig,
        registry: TypeRegistry,
        shards: usize,
    ) -> Result<Self, PoolError> {
        if cfg.data_bytes == 0 {
            return Err(PoolError::BadPool {
                reason: "data_bytes must be positive",
            });
        }
        let shards = shards.clamp(1, MAX_SHARDS);
        let layout = PoolLayout::compute(cfg.data_bytes, cfg.os_page_size);
        let machine = MachineConfig {
            tlb_page_size: cfg.os_page_size,
            ..cfg.machine
        };
        let engine = PmEngine::new(machine, layout.total_bytes);
        engine.with_media_mut(|m| {
            m.write_u64(HDR_MAGIC, POOL_MAGIC);
            m.write_u64(HDR_OS_PAGE, layout.os_page_size);
            m.write_u64(HDR_NUM_FRAMES, layout.num_frames);
            m.write_u64(HDR_ROOT, PmPtr::NULL.raw());
            if shards > 1 {
                m.write_u64(HDR_SHARDS, shards as u64);
            }
        });
        Ok(Self::with_engine(engine, layout, registry, shards))
    }

    /// Opens a pool over existing media (after a crash and recovery).
    ///
    /// Rebuilds the volatile allocator state from the persistent per-frame
    /// bitmap records. Run the defragmenter's recovery *before* opening if
    /// the pool may contain an interrupted GC cycle.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::BadPool`] on a bad magic value or geometry.
    pub fn open(engine: PmEngine, registry: TypeRegistry) -> Result<Self, PoolError> {
        let (magic, os_page, num_frames, shards) = engine.with_media(|m| {
            (
                m.read_u64(HDR_MAGIC),
                m.read_u64(HDR_OS_PAGE),
                m.read_u64(HDR_NUM_FRAMES),
                m.read_u64(HDR_SHARDS),
            )
        });
        if magic != POOL_MAGIC {
            return Err(PoolError::BadPool {
                reason: "bad magic",
            });
        }
        let layout = PoolLayout::compute(num_frames * FRAME_BYTES, os_page);
        if layout.total_bytes != engine.len() {
            return Err(PoolError::BadPool {
                reason: "geometry mismatch with media size",
            });
        }
        // Zero (pre-sharding media) means one shard.
        let shards = (shards as usize).clamp(1, MAX_SHARDS);
        let pool = Self::with_engine(engine, layout, registry, shards);
        pool.rebuild_from_media();
        Ok(pool)
    }

    fn with_engine(
        engine: PmEngine,
        layout: PoolLayout,
        registry: TypeRegistry,
        nshards: usize,
    ) -> Self {
        let num_frames = layout.num_frames as usize;
        let shards: Box<[Mutex<AllocInner>]> = (0..nshards)
            .map(|s| {
                Mutex::new(AllocInner {
                    frames: (0..num_frames).map(|_| FrameState::default()).collect(),
                    os_pages: (0..layout.num_os_pages())
                        .map(|_| OsPage {
                            committed: false,
                            used_frames: 0,
                        })
                        .collect(),
                    partial: std::collections::HashMap::new(),
                    // Owned frames only, popped in ascending order (the
                    // single-shard list reproduces the pre-sharding order).
                    free_frames: (0..num_frames as u32)
                        .filter(|&f| layout.shard_of_frame(f as u64, nshards) == s)
                        .rev()
                        .collect(),
                    active: std::collections::HashMap::new(),
                    committed_pages: 0,
                    live_bytes: 0,
                })
            })
            .collect();
        // Relocatable base: different per open, derived from the seed.
        let base = 0x5000_0000_0000u64 ^ (engine.config().seed.rotate_left(17) & 0xFFFF_F000);
        PmPool {
            engine,
            layout,
            registry,
            shards,
            nshards,
            steal_lock: Mutex::new(()),
            record_stripes: (0..RECORD_STRIPES).map(|_| Mutex::new(())).collect(),
            base: AtomicU64::new(base),
            pool_id: 1,
        }
    }

    fn stripe(&self, frame: u32) -> &Mutex<()> {
        &self.record_stripes[frame as usize % RECORD_STRIPES]
    }

    /// The allocator shard owning `frame`.
    fn shard_of_frame(&self, frame: u64) -> usize {
        self.layout.shard_of_frame(frame, self.nshards)
    }

    /// The allocator shard owning OS page `page` (frames on a page always
    /// share their page's shard).
    fn shard_of_page(&self, page: u64) -> usize {
        (page % self.nshards as u64) as usize
    }

    fn inner_of_frame(&self, frame: u64) -> &Mutex<AllocInner> {
        &self.shards[self.shard_of_frame(frame)]
    }

    /// Locks every shard in ascending index order (the multi-shard lock
    /// order; used by huge allocation and rebuild).
    fn lock_all(&self) -> Vec<parking_lot::MutexGuard<'_, AllocInner>> {
        self.shards.iter().map(|m| m.lock()).collect()
    }

    /// Rebuilds volatile allocator state from persistent bitmap records.
    fn rebuild_from_media(&self) {
        let mut guards = self.lock_all();
        for inner in guards.iter_mut() {
            inner.partial.clear();
            inner.free_frames.clear();
            inner.active.clear();
            inner.live_bytes = 0;
            inner.committed_pages = 0;
            for p in inner.os_pages.iter_mut() {
                p.committed = false;
                p.used_frames = 0;
            }
        }
        let states: Vec<FrameState> = self.engine.with_media(|m| {
            (0..self.layout.num_frames)
                .map(|f| {
                    let rec: [u8; 64] = m
                        .read_vec(self.layout.bitmap_record(f), 64)
                        .try_into()
                        .expect("64-byte record");
                    FrameState::from_record(&rec)
                })
                .collect()
        });
        // Pass 1: compute per-frame live bytes from headers; detect huge
        // runs; infer the frame's size class (mixed-class frames — former
        // GC destinations — stay unclassified and are not refilled).
        let mut huge_tail = 0usize; // frames remaining in the current huge run
        let mut rebuilt: Vec<FrameState> = Vec::with_capacity(states.len());
        for (idx, mut st) in states.into_iter().enumerate() {
            if huge_tail > 0 {
                st.kind = FrameKind::Huge;
                huge_tail -= 1;
                rebuilt.push(st);
                continue;
            }
            let mut live = 0u32;
            let mut spill_frames = 0usize;
            let mut class: Option<u8> = None;
            let mut mixed = false;
            for slot in st.start_slots().collect::<Vec<_>>() {
                let hdr_off = self.layout.frame_start(idx as u64) + slot as u64 * SLOT_BYTES;
                let word = self.engine.with_media(|m| m.read_u64(hdr_off));
                let size = (word & 0xFFFF_FFFF) as u32;
                live += size + OBJ_HEADER_BYTES as u32;
                let total = size as u64 + OBJ_HEADER_BYTES;
                let c = class_of(Self::slots_for(size as u64));
                match class {
                    None => class = Some(c),
                    Some(prev) if prev != c => mixed = true,
                    _ => {}
                }
                if total > FRAME_BYTES {
                    st.kind = FrameKind::Huge;
                    spill_frames = total.div_ceil(FRAME_BYTES) as usize - 1;
                }
            }
            st.live_bytes = live;
            st.class = if mixed { None } else { class };
            huge_tail = spill_frames;
            rebuilt.push(st);
        }
        // Pass 2: distribute to owner shards and rebuild lists and page
        // accounting, each frame in its owner's books only.
        for (idx, st) in rebuilt.into_iter().enumerate() {
            let owner = self.shard_of_frame(idx as u64);
            let inner = &mut guards[owner];
            let kind = st.kind;
            let live = st.live_bytes as u64;
            let free = st.free_slots;
            let class = st.class;
            inner.frames[idx] = st;
            match kind {
                FrameKind::Free => inner.free_frames.push(idx as u32),
                FrameKind::Active | FrameKind::Huge => {
                    inner.live_bytes += live;
                    let page = self.layout.os_page_of_frame(idx as u64) as usize;
                    if !inner.os_pages[page].committed {
                        inner.os_pages[page].committed = true;
                        inner.committed_pages += 1;
                    }
                    inner.os_pages[page].used_frames += 1;
                    if kind == FrameKind::Active && free > 0 {
                        if let Some(c) = class {
                            inner.partial.entry(c).or_default().push(idx as u32);
                        }
                    }
                }
                FrameKind::Relocation | FrameKind::Destination => {
                    unreachable!("rebuild never produces GC-transient kinds")
                }
            }
        }
        for inner in guards.iter_mut() {
            inner.free_frames.reverse();
        }
    }

    // ---- accessors ----------------------------------------------------------

    /// The machine configuration (for constructing [`Ctx`]s).
    pub fn machine(&self) -> &MachineConfig {
        self.engine.config()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &PmEngine {
        &self.engine
    }

    /// The media layout.
    pub fn layout(&self) -> &PoolLayout {
        &self.layout
    }

    /// The type registry supplied at creation.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// This pool's id (used in persistent pointers).
    pub fn pool_id(&self) -> u16 {
        self.pool_id
    }

    /// Number of allocator shards (GC domains).
    pub fn num_shards(&self) -> usize {
        self.nshards
    }

    /// Current virtual base address of the mapping.
    pub fn base(&self) -> u64 {
        self.base.load(Ordering::Relaxed)
    }

    /// Remaps the pool to a different virtual base (relocatability).
    pub fn set_base(&self, base: u64) {
        self.base.store(base, Ordering::Relaxed);
    }

    /// Virtual address of `ptr` under the current mapping (PMDK's
    /// `persistent_ptr2normal_ptr`).
    ///
    /// # Panics
    ///
    /// Panics on the null pointer.
    pub fn va_of(&self, ptr: PmPtr) -> u64 {
        assert!(!ptr.is_null(), "null pointer has no address");
        self.base() + ptr.offset()
    }

    /// Inverse of [`PmPool::va_of`].
    pub fn ptr_of_va(&self, va: u64) -> PmPtr {
        PmPtr::new(self.pool_id, va - self.base())
    }

    /// Pool-offset of the first byte of data frame `frame`.
    pub fn frame_start(&self, frame: u64) -> u64 {
        self.layout.frame_start(frame)
    }

    // ---- root ---------------------------------------------------------------

    /// Reads the root pointer (simulated).
    pub fn root(&self, ctx: &mut Ctx) -> PmPtr {
        PmPtr::from_raw(self.engine.read_u64(ctx, HDR_ROOT))
    }

    /// Stores and persists the root pointer.
    pub fn set_root(&self, ctx: &mut Ctx, ptr: PmPtr) {
        self.engine.write_u64(ctx, HDR_ROOT, ptr.raw());
        self.engine.persist(ctx, HDR_ROOT, 8);
    }

    // ---- allocation ----------------------------------------------------------

    fn slots_for(payload: u64) -> usize {
        (payload + OBJ_HEADER_BYTES).div_ceil(SLOT_BYTES) as usize
    }

    /// Allocates a typed object with `payload` bytes, returning a pointer to
    /// the (zeroed at first use, not cleared) payload.
    ///
    /// # Errors
    ///
    /// [`PoolError::OutOfMemory`] when no frame can satisfy the request;
    /// [`PoolError::AllocationTooLarge`] when a huge allocation exceeds the
    /// whole heap.
    pub fn pmalloc(
        &self,
        ctx: &mut Ctx,
        type_id: TypeId,
        payload: u64,
    ) -> Result<PmPtr, PoolError> {
        if payload > MAX_SMALL_PAYLOAD {
            return self.pmalloc_huge(ctx, type_id, payload);
        }
        let n = Self::slots_for(payload);
        loop {
            let (frame, slot) = self.pick_slot(ctx.arena(), n, payload)?;
            // The candidate run was found under a lock acquisition separate
            // from the commit below, so a concurrent allocator may have
            // claimed it meanwhile; commit verifies under the frame's
            // stripe and asks for a fresh candidate when it lost the race.
            if self.commit_alloc(ctx, frame, slot, n, type_id, payload) {
                return Ok(self.ptr_at(frame, slot));
            }
        }
    }

    fn ptr_at(&self, frame: u32, slot: usize) -> PmPtr {
        PmPtr::new(
            self.pool_id,
            self.layout.frame_start(frame as u64) + slot as u64 * SLOT_BYTES + OBJ_HEADER_BYTES,
        )
    }

    fn pick_slot(&self, arena: u32, n: usize, payload: u64) -> Result<(u32, usize), PoolError> {
        let cls = class_of(n);
        let home = arena as usize % self.nshards;
        {
            let mut inner = self.shards[home].lock();
            // 1. bump in this arena's active frame for the class
            if let Some(&a) = inner.active.get(&(arena, cls)) {
                if let Some(slot) = inner.frames[a as usize].find_free_run(n) {
                    return Ok((a, slot));
                }
                // Active frame exhausted for this size; demote it.
                if inner.frames[a as usize].free_slots > 0 {
                    inner.partial.entry(cls).or_default().push(a);
                }
                inner.active.remove(&(arena, cls));
            }
            // 2. bounded first-fit over this class's partial frames
            let mut found: Option<(usize, usize)> = None;
            if let Some(list) = inner.partial.get(&cls) {
                for (i, &f) in list.iter().enumerate().rev().take(PARTIAL_SCAN_LIMIT) {
                    if inner.frames[f as usize].free_slots as usize >= n {
                        if let Some(slot) = inner.frames[f as usize].find_free_run(n) {
                            found = Some((i, slot));
                            break;
                        }
                    }
                }
            }
            if let Some((i, slot)) = found {
                let f = inner
                    .partial
                    .get_mut(&cls)
                    .expect("list exists")
                    .swap_remove(i);
                inner.active.insert((arena, cls), f);
                return Ok((f, slot));
            }
            // 3. fresh frame, claimed for this class
            if let Some(f) = Self::pop_free_frame(&mut inner, &self.layout) {
                inner.frames[f as usize].class = Some(cls);
                inner.active.insert((arena, cls), f);
                return Ok((f, 0));
            }
        }
        if self.nshards > 1 {
            return self.steal_slot(home, cls, n, payload);
        }
        Err(PoolError::OutOfMemory {
            requested: payload + OBJ_HEADER_BYTES,
        })
    }

    /// Cross-shard frame hand-off: the home shard is out of free frames, so
    /// borrow capacity from a donor. Rare path, serialized by `steal_lock`
    /// (taken with no shard lock held; lock order steal → one donor shard).
    /// Stolen frames stay in the **donor's** bookkeeping — they go on the
    /// donor's partial list, never into the thief's active map — so every
    /// shard's lists keep referencing only frames it owns, and the owner's
    /// `pfree` list maintenance stays complete.
    fn steal_slot(
        &self,
        home: usize,
        cls: u8,
        n: usize,
        payload: u64,
    ) -> Result<(u32, usize), PoolError> {
        let _steal = self.steal_lock.lock();
        // Home first (frames may have been freed since we dropped its
        // lock), then donors in ascending order.
        for s in std::iter::once(home).chain((0..self.nshards).filter(|&s| s != home)) {
            let mut inner = self.shards[s].lock();
            // Reuse an earlier steal's leftover capacity before popping a
            // fresh donor frame (the frame stays listed in the donor's
            // partial; commit_alloc verifies the run under the stripe).
            if let Some(list) = inner.partial.get(&cls) {
                let mut found = None;
                for &f in list.iter().rev().take(PARTIAL_SCAN_LIMIT) {
                    if inner.frames[f as usize].free_slots as usize >= n {
                        if let Some(slot) = inner.frames[f as usize].find_free_run(n) {
                            found = Some((f, slot));
                            break;
                        }
                    }
                }
                if let Some((f, slot)) = found {
                    return Ok((f, slot));
                }
            }
            if let Some(f) = Self::pop_free_frame(&mut inner, &self.layout) {
                inner.frames[f as usize].class = Some(cls);
                inner.partial.entry(cls).or_default().push(f);
                return Ok((f, 0));
            }
        }
        Err(PoolError::OutOfMemory {
            requested: payload + OBJ_HEADER_BYTES,
        })
    }

    /// Retires allocation arena `arena` after its owner thread died: every
    /// active bump frame the arena still claims is demoted to an ordinary
    /// partial (or free) frame of its owning shard, so the orphan's
    /// reserved capacity returns to general service instead of sitting
    /// invisible to both the partial scan and the work-stealing path until
    /// out-of-memory.
    ///
    /// Frames never change shard — demotion happens inside each owner
    /// shard's own lock, honouring the documented stripe → inner lock
    /// order (no stripe or steal lock is needed: only volatile list
    /// membership moves, never persistent state). Racing allocators are
    /// safe: a thief that found the frame via the partial list re-verifies
    /// its run under the commit stripe like any other allocation.
    pub fn retire_arena(&self, arena: u32) {
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            let claimed: Vec<(u8, u32)> = inner
                .active
                .iter()
                .filter(|((a, _), _)| *a == arena)
                .map(|((_, cls), &f)| (*cls, f))
                .collect();
            for (cls, f) in claimed {
                inner.active.remove(&(arena, cls));
                let st = &inner.frames[f as usize];
                if st.kind == FrameKind::Free {
                    // Claimed but never used: return it to the free list,
                    // mirroring pfree's fully-freed transition.
                    inner.frames[f as usize].class = None;
                    inner.free_frames.push(f);
                    let page = self.layout.os_page_of_frame(f as u64) as usize;
                    inner.os_pages[page].used_frames -= 1;
                } else if st.free_slots > 0 {
                    inner.partial.entry(cls).or_default().push(f);
                }
                // Full frames stay unlisted; the owner shard's pfree
                // re-lists them as soon as a slot frees, exactly as for a
                // demoted active frame.
            }
        }
    }

    /// Pops a free frame and commits its OS page. Shared with GC destination
    /// reservation.
    fn pop_free_frame(inner: &mut AllocInner, layout: &PoolLayout) -> Option<u32> {
        let f = inner.free_frames.pop()?;
        let page = layout.os_page_of_frame(f as u64) as usize;
        if !inner.os_pages[page].committed {
            inner.os_pages[page].committed = true;
            inner.committed_pages += 1;
        }
        inner.os_pages[page].used_frames += 1;
        Some(f)
    }

    /// Verifies the candidate run is still free, reserves it, and persists
    /// header + bitmap record — all under the frame's commit stripe.
    /// Returns `false` when a concurrent allocator claimed (part of) the
    /// run first, or the frame left allocator service entirely; the caller
    /// re-picks.
    fn commit_alloc(
        &self,
        ctx: &mut Ctx,
        frame: u32,
        slot: usize,
        n: usize,
        type_id: TypeId,
        payload: u64,
    ) -> bool {
        let _stripe = self.stripe(frame).lock();
        {
            let mut inner = self.inner_of_frame(frame as u64).lock();
            let st = &mut inner.frames[frame as usize];
            let usable = matches!(st.kind, FrameKind::Free | FrameKind::Active);
            if !usable || !st.is_run_free(slot, n) {
                return false;
            }
            st.mark_allocated(slot, n, (payload + OBJ_HEADER_BYTES) as u32);
            inner.live_bytes += payload + OBJ_HEADER_BYTES;
        }
        // Thread-crash analog of the persistent commit point below: the
        // slots are marked allocated in volatile state but the header is
        // not written yet, so a thread dying inside the header write would
        // leave an allocated slot whose header is stale garbage — the
        // sweeper would later free it *by that garbage header*. Roll the
        // volatile reservation back on unwind, exactly as machine-crash
        // recovery drops the slots when the record never became durable.
        // Declared after `_stripe` so the rollback runs with the stripe
        // still held.
        let mut undo = UndoAlloc {
            pool: self,
            frame,
            slot,
            n,
            total: payload + OBJ_HEADER_BYTES,
            armed: true,
        };
        // Persist order gives the allocator a commit point: header first,
        // then the bitmap record. A crash in between leaves the slots free.
        // The stripe held across both writes keeps any other thread from
        // persisting a record of this frame that already shows our slots
        // while our header is not yet durable.
        let hdr_off = self.layout.frame_start(frame as u64) + slot as u64 * SLOT_BYTES;
        let word0 = ((type_id.0 as u64) << 32) | payload;
        self.engine.write_u64(ctx, hdr_off, word0);
        self.engine.write_u64(ctx, hdr_off + 8, 0);
        self.engine.persist(ctx, hdr_off, OBJ_HEADER_BYTES);
        // Header complete: a death past this point leaves an ordinary
        // unreachable object the next sweep collects.
        undo.armed = false;
        let rec = self.inner_of_frame(frame as u64).lock().frames[frame as usize].to_record();
        self.write_bitmap_record(ctx, frame, &rec);
        true
    }

    /// Rolls a small-object allocation's volatile reservation back when the
    /// allocating thread dies (unwinds) between `mark_allocated` and the
    /// completion of the object-header write. Disarmed once the header is
    /// complete. See `commit_alloc`.
    fn undo_alloc_volatile(&self, frame: u32, slot: usize, n: usize, total: u64) {
        let _ = self.free_slots_volatile(frame, slot, n, total);
    }

    fn write_bitmap_record(&self, ctx: &mut Ctx, frame: u32, rec: &[u8; 64]) {
        let off = self.layout.bitmap_record(frame as u64);
        self.engine.write(ctx, off, rec);
        self.engine.persist(ctx, off, 64);
    }

    fn pmalloc_huge(
        &self,
        ctx: &mut Ctx,
        type_id: TypeId,
        payload: u64,
    ) -> Result<PmPtr, PoolError> {
        let total = payload + OBJ_HEADER_BYTES;
        let frames_needed = total.div_ceil(FRAME_BYTES) as usize;
        if frames_needed as u64 > self.layout.num_frames {
            return Err(PoolError::AllocationTooLarge {
                requested: payload,
                max: self.layout.num_frames * FRAME_BYTES - OBJ_HEADER_BYTES,
            });
        }
        let first = {
            // A huge run may cross shard boundaries (consecutive OS pages
            // alternate owners), so hold every shard lock in ascending
            // order for the whole reservation. Huge frames never relocate
            // — the GC summary skips pages holding them — so cross-shard
            // runs never entangle two shards' cycles.
            let mut guards = self.lock_all();
            // Find `frames_needed` *consecutive* free frames.
            let mut run_start: Option<u32> = None;
            let mut run_len = 0usize;
            for f in 0..self.layout.num_frames as u32 {
                let owner = self.shard_of_frame(f as u64);
                if guards[owner].frames[f as usize].kind == FrameKind::Free {
                    if run_len == 0 {
                        run_start = Some(f);
                    }
                    run_len += 1;
                    if run_len == frames_needed {
                        break;
                    }
                } else {
                    run_len = 0;
                    run_start = None;
                }
            }
            let start = match (run_start, run_len) {
                (Some(s), l) if l == frames_needed => s,
                _ => {
                    return Err(PoolError::OutOfMemory { requested: total });
                }
            };
            for f in start..start + frames_needed as u32 {
                let inner = &mut guards[self.shard_of_frame(f as u64)];
                inner.free_frames.retain(|&x| x != f);
                let page = self.layout.os_page_of_frame(f as u64) as usize;
                if !inner.os_pages[page].committed {
                    inner.os_pages[page].committed = true;
                    inner.committed_pages += 1;
                }
                inner.os_pages[page].used_frames += 1;
                let st = &mut inner.frames[f as usize];
                st.kind = FrameKind::Huge;
                st.alloc = [u64::MAX; 4];
                st.free_slots = 0;
            }
            let first_inner = &mut guards[self.shard_of_frame(start as u64)];
            let st = &mut first_inner.frames[start as usize];
            st.start[0] |= 1;
            st.live_bytes = total.min(u32::MAX as u64) as u32;
            first_inner.live_bytes += total;
            start
        };
        // Thread-crash rollback (see `UndoHugeAlloc`): until the header is
        // complete, a dying thread must return the reserved run to the free
        // lists rather than leave Huge frames behind a garbage header.
        let mut undo = UndoHugeAlloc {
            pool: self,
            first,
            frames: frames_needed as u32,
            total,
            armed: true,
        };
        // Header + bitmap records.
        let hdr_off = self.layout.frame_start(first as u64);
        let word0 = ((type_id.0 as u64) << 32) | payload;
        self.engine.write_u64(ctx, hdr_off, word0);
        self.engine.write_u64(ctx, hdr_off + 8, 0);
        self.engine.persist(ctx, hdr_off, OBJ_HEADER_BYTES);
        undo.armed = false;
        for f in first..first + frames_needed as u32 {
            let _stripe = self.stripe(f).lock();
            let rec = self.inner_of_frame(f as u64).lock().frames[f as usize].to_record();
            self.write_bitmap_record(ctx, f, &rec);
        }
        Ok(PmPtr::new(self.pool_id, hdr_off + OBJ_HEADER_BYTES))
    }

    /// Frees the object at `ptr`.
    ///
    /// # Errors
    ///
    /// [`PoolError::InvalidPointer`] if `ptr` does not reference a live
    /// object's payload start.
    pub fn pfree(&self, ctx: &mut Ctx, ptr: PmPtr) -> Result<(), PoolError> {
        let (frame, slot) = self.locate(ptr)?;
        let (type_id, size) = self.object_header(ctx, ptr);
        let _ = type_id;
        let total = size as u64 + OBJ_HEADER_BYTES;
        if total > FRAME_BYTES {
            return self.pfree_huge(ctx, ptr, frame, total);
        }
        let n = Self::slots_for(size as u64);
        // Stripe before inner (the pool-wide lock order): the record write
        // below must not interleave with a concurrent same-frame commit.
        let _stripe = self.stripe(frame).lock();
        if !self.inner_of_frame(frame as u64).lock().frames[frame as usize].is_start(slot) {
            return Err(PoolError::InvalidPointer {
                raw: ptr.raw(),
                reason: "not an object start",
            });
        }
        let rec = self.free_slots_volatile(frame, slot, n, total);
        self.write_bitmap_record(ctx, frame, &rec);
        Ok(())
    }

    /// The volatile half of a small-object free: bitmap and class-list
    /// bookkeeping plus accounting, under the frame's shard lock. Shared by
    /// [`Self::pfree`] (which then persists the returned record) and the
    /// [`UndoAlloc`] thread-crash rollback (which does not — the dying
    /// thread's record write never happened, so the persistent state
    /// already agrees). Caller holds the frame's stripe.
    fn free_slots_volatile(&self, frame: u32, slot: usize, n: usize, total: u64) -> [u8; 64] {
        let mut inner = self.inner_of_frame(frame as u64).lock();
        let st = &mut inner.frames[frame as usize];
        st.mark_freed(slot, n, total as u32);
        let cls = st.class;
        let became_partial = st.kind == FrameKind::Active
            && st.free_slots as usize == n
            && cls.is_some()
            && !inner.active.values().any(|&f| f == frame);
        if became_partial {
            inner
                .partial
                .entry(cls.expect("checked above"))
                .or_default()
                .push(frame);
        }
        if inner.frames[frame as usize].kind == FrameKind::Free {
            // Page stays committed (PMDK never decommits); the frame is
            // reusable though.
            inner.frames[frame as usize].class = None;
            inner.purge(frame);
            inner.free_frames.push(frame);
            let page = self.layout.os_page_of_frame(frame as u64) as usize;
            inner.os_pages[page].used_frames -= 1;
        }
        inner.live_bytes -= total;
        inner.frames[frame as usize].to_record()
    }

    fn pfree_huge(
        &self,
        ctx: &mut Ctx,
        ptr: PmPtr,
        first: u32,
        total: u64,
    ) -> Result<(), PoolError> {
        let frames = total.div_ceil(FRAME_BYTES) as u32;
        // Defense in depth against torn headers (thread-crash fault model):
        // `total` comes from the object header, so before zeroing `frames`
        // consecutive records the span must actually be a Huge run inside
        // the pool. A header whose size claims a huge span from a non-Huge
        // frame — or past the end of the frame table — is corrupt, not a
        // freeable object. Host-side checks only; both always hold for a
        // legitimately allocated huge object.
        if first as u64 + frames as u64 > self.layout.num_frames
            || self.frame_state(first as u64).kind != FrameKind::Huge
        {
            return Err(PoolError::InvalidPointer {
                raw: ptr.raw(),
                reason: "huge-object header span exceeds its allocation",
            });
        }
        {
            let mut inner = self.inner_of_frame(first as u64).lock();
            if !inner.frames[first as usize].is_start(0) {
                return Err(PoolError::InvalidPointer {
                    raw: ptr.raw(),
                    reason: "not a huge object start",
                });
            }
            // Claim the free by clearing the start bit under the same lock
            // as the check: a racing double-free now fails validation
            // instead of tearing the accounting down twice.
            inner.frames[first as usize].start[0] &= !1;
        }
        // Zero the records while every frame is still `Huge` — nothing can
        // allocate from a Huge frame, so no concurrent record write of the
        // same frames can land between ours. Releasing the frames *first*
        // would let an allocator claim one, persist its record, and have
        // our zeroing wipe that allocation out.
        for f in first..first + frames {
            let _stripe = self.stripe(f).lock();
            self.write_bitmap_record(ctx, f, &[0u8; 64]);
        }
        // Release each frame under its owner's lock (the frames are all
        // still `Huge`, so no other path can touch them meanwhile); the
        // run's live bytes come off the start frame's owner, where the
        // allocation charged them.
        for f in first..first + frames {
            let mut inner = self.inner_of_frame(f as u64).lock();
            let st = &mut inner.frames[f as usize];
            st.kind = FrameKind::Free;
            st.alloc = [0; 4];
            st.start = [0; 4];
            st.free_slots = SLOTS_PER_FRAME as u16;
            st.live_bytes = 0;
            st.class = None;
            inner.free_frames.push(f);
            let page = self.layout.os_page_of_frame(f as u64) as usize;
            inner.os_pages[page].used_frames -= 1;
        }
        self.inner_of_frame(first as u64).lock().live_bytes -= total;
        Ok(())
    }

    /// Resolves `ptr` to (frame, start slot).
    fn locate(&self, ptr: PmPtr) -> Result<(u32, usize), PoolError> {
        if ptr.is_null() {
            return Err(PoolError::InvalidPointer {
                raw: 0,
                reason: "null",
            });
        }
        let hdr = ptr
            .offset()
            .checked_sub(OBJ_HEADER_BYTES)
            .ok_or(PoolError::InvalidPointer {
                raw: ptr.raw(),
                reason: "offset before heap",
            })?;
        let frame = self.layout.frame_of(hdr).ok_or(PoolError::InvalidPointer {
            raw: ptr.raw(),
            reason: "outside data region",
        })?;
        let slot = ((hdr - self.layout.frame_start(frame)) / SLOT_BYTES) as usize;
        Ok((frame as u32, slot))
    }

    // ---- object access --------------------------------------------------------

    /// Reads the object header (simulated): (type, payload size).
    pub fn object_header(&self, ctx: &mut Ctx, ptr: PmPtr) -> (TypeId, u32) {
        let word = self.engine.read_u64(ctx, ptr.offset() - OBJ_HEADER_BYTES);
        (TypeId((word >> 32) as u32), (word & 0xFFFF_FFFF) as u32)
    }

    /// Reads the object header without simulation (validators, recovery
    /// bootstrap).
    pub fn peek_header(&self, ptr: PmPtr) -> (TypeId, u32) {
        let word = self.engine.peek_u64(ptr.offset() - OBJ_HEADER_BYTES);
        (TypeId((word >> 32) as u32), (word & 0xFFFF_FFFF) as u32)
    }

    /// Simulated read of payload bytes.
    pub fn read_bytes(&self, ctx: &mut Ctx, ptr: PmPtr, field_off: u64, buf: &mut [u8]) {
        self.engine.read(ctx, ptr.offset() + field_off, buf);
    }

    /// Simulated write of payload bytes.
    pub fn write_bytes(&self, ctx: &mut Ctx, ptr: PmPtr, field_off: u64, data: &[u8]) {
        self.engine.write(ctx, ptr.offset() + field_off, data);
    }

    /// Simulated `u64` field read.
    pub fn read_u64(&self, ctx: &mut Ctx, ptr: PmPtr, field_off: u64) -> u64 {
        self.engine.read_u64(ctx, ptr.offset() + field_off)
    }

    /// Simulated `u64` field write.
    pub fn write_u64(&self, ctx: &mut Ctx, ptr: PmPtr, field_off: u64, v: u64) {
        self.engine.write_u64(ctx, ptr.offset() + field_off, v)
    }

    /// Persists (clwb×n + sfence) a payload field range.
    pub fn persist(&self, ctx: &mut Ctx, ptr: PmPtr, field_off: u64, len: u64) {
        self.engine.persist(ctx, ptr.offset() + field_off, len);
    }

    // ---- GC support -------------------------------------------------------------

    /// Volatile snapshot of a frame's allocator state.
    pub fn frame_state(&self, frame: u64) -> FrameState {
        self.inner_of_frame(frame).lock().frames[frame as usize].clone()
    }

    /// Changes a frame's role (GC: Active↔Relocation/Destination).
    pub fn set_frame_kind(&self, frame: u64, kind: FrameKind) {
        let mut inner = self.inner_of_frame(frame).lock();
        inner.frames[frame as usize].kind = kind;
        if matches!(kind, FrameKind::Relocation | FrameKind::Destination) {
            // Stop the allocator from placing new objects there.
            inner.purge(frame as u32);
        }
    }

    /// Enumerates live objects in `frame`, charging one bitmap-record read.
    pub fn frame_objects(&self, ctx: &mut Ctx, frame: u64) -> Vec<FrameObject> {
        // One simulated read of the 64-byte record models the GC touching
        // the bitmap; enumeration itself uses the volatile mirror.
        let mut rec = [0u8; 64];
        self.engine
            .read(ctx, self.layout.bitmap_record(frame), &mut rec);
        self.collect_frame_objects(frame)
    }

    /// Enumerates live objects in `frame` without simulation.
    pub fn peek_frame_objects(&self, frame: u64) -> Vec<FrameObject> {
        self.collect_frame_objects(frame)
    }

    fn collect_frame_objects(&self, frame: u64) -> Vec<FrameObject> {
        let st = self.inner_of_frame(frame).lock().frames[frame as usize].clone();
        st.start_slots()
            .map(|slot| {
                let ptr = self.ptr_at(frame as u32, slot);
                let (type_id, size) = self.peek_header(ptr);
                FrameObject {
                    ptr,
                    type_id,
                    size,
                    slot,
                    slots: Self::slots_for(size as u64),
                }
            })
            .collect()
    }

    /// Takes a free frame for GC destination use, committing its page.
    ///
    /// # Errors
    ///
    /// [`PoolError::OutOfMemory`] when the pool has no free frame.
    pub fn take_destination_frame(&self, ctx: &mut Ctx) -> Result<u64, PoolError> {
        self.take_destination_frame_avoiding(ctx, &std::collections::HashSet::new())
    }

    /// Like [`PmPool::take_destination_frame`] but never returns a frame on
    /// one of the `avoid` OS pages (the pages selected for evacuation —
    /// placing a destination there would make them unreleasable).
    ///
    /// # Errors
    ///
    /// [`PoolError::OutOfMemory`] when no eligible free frame exists.
    pub fn take_destination_frame_avoiding(
        &self,
        ctx: &mut Ctx,
        avoid: &std::collections::HashSet<u64>,
    ) -> Result<u64, PoolError> {
        for s in 0..self.nshards {
            if let Ok(f) = self.take_destination_frame_avoiding_in(ctx, s, avoid) {
                return Ok(f);
            }
        }
        Err(PoolError::OutOfMemory {
            requested: FRAME_BYTES,
        })
    }

    /// Like [`PmPool::take_destination_frame_avoiding`] but takes the frame
    /// from shard `shard`'s own free list, so a per-shard GC cycle keeps
    /// its destinations inside the shard it is compacting.
    ///
    /// # Errors
    ///
    /// [`PoolError::OutOfMemory`] when the shard has no eligible free frame.
    pub fn take_destination_frame_avoiding_in(
        &self,
        _ctx: &mut Ctx,
        shard: usize,
        avoid: &std::collections::HashSet<u64>,
    ) -> Result<u64, PoolError> {
        let mut inner = self.shards[shard].lock();
        let mut skipped = Vec::new();
        let picked = loop {
            match Self::pop_free_frame(&mut inner, &self.layout) {
                Some(f) => {
                    if avoid.contains(&self.layout.os_page_of_frame(f as u64)) {
                        // Undo the page accounting pop_free_frame applied.
                        let page = self.layout.os_page_of_frame(f as u64) as usize;
                        inner.os_pages[page].used_frames -= 1;
                        skipped.push(f);
                    } else {
                        break Some(f);
                    }
                }
                None => break None,
            }
        };
        inner.free_frames.extend(skipped);
        let f = picked.ok_or(PoolError::OutOfMemory {
            requested: FRAME_BYTES,
        })?;
        inner.frames[f as usize].kind = FrameKind::Destination;
        Ok(f as u64)
    }

    /// Decommits committed OS pages with no used frames, returning how many
    /// were released. The baseline allocator never calls this; the
    /// defragmenter does at each summary (empty pages are free wins).
    pub fn decommit_empty_pages(&self) -> u64 {
        let mut released_total = 0;
        for s in 0..self.nshards {
            let mut inner = self.shards[s].lock();
            let mut released = 0;
            for (pi, p) in inner.os_pages.iter_mut().enumerate() {
                if pi % self.nshards == s && p.committed && p.used_frames == 0 {
                    p.committed = false;
                    released += 1;
                }
            }
            inner.committed_pages -= released;
            released_total += released;
        }
        released_total
    }

    /// Whether OS page `page` is currently committed.
    pub fn page_committed(&self, page: u64) -> bool {
        self.shards[self.shard_of_page(page)].lock().os_pages[page as usize].committed
    }

    /// Reserves `n` slots at `slot` in destination frame `frame` for an
    /// incoming object of `bytes` total bytes, persisting the bitmap record.
    /// Called by the GC summary phase (deterministic relocation).
    pub fn reserve_destination_slots(
        &self,
        ctx: &mut Ctx,
        frame: u64,
        slot: usize,
        n: usize,
        bytes: u32,
    ) {
        let _stripe = self.stripe(frame as u32).lock();
        let rec = {
            let mut inner = self.inner_of_frame(frame).lock();
            let st = &mut inner.frames[frame as usize];
            debug_assert_eq!(st.kind, FrameKind::Destination);
            st.mark_allocated(slot, n, bytes);
            // mark_allocated flips Free→Active; keep Destination.
            st.kind = FrameKind::Destination;
            st.to_record()
        };
        self.write_bitmap_record(ctx, frame as u32, &rec);
    }

    /// Converts a destination frame into a normal active frame once the GC
    /// cycle completes. Destination frames mix size classes, so they are
    /// not refilled by the allocator — their leftover slots return only
    /// when the frame empties (consolidation waste, as in real allocators).
    pub fn finish_destination_frame(&self, frame: u64) {
        let mut inner = self.inner_of_frame(frame).lock();
        let st = &mut inner.frames[frame as usize];
        debug_assert_eq!(st.kind, FrameKind::Destination);
        st.kind = FrameKind::Active;
        st.class = None;
    }

    /// Marks a relocation frame fully evacuated (§5: `pmalloc`/`pfree`
    /// periodically release pages whose objects have all relocated): the
    /// frame stops counting toward the footprint immediately — its OS page
    /// decommits once every frame on it is evacuated or free — but it is
    /// *not* reusable until [`PmPool::release_frame`] at cycle termination,
    /// because stale references into it are still being forwarded.
    pub fn evacuate_frame(&self, frame: u64) {
        let mut inner = self.inner_of_frame(frame).lock();
        if inner.frames[frame as usize].evacuated {
            return;
        }
        inner.frames[frame as usize].evacuated = true;
        let page = self.layout.os_page_of_frame(frame) as usize;
        inner.os_pages[page].used_frames -= 1;
        if inner.os_pages[page].used_frames == 0 && inner.os_pages[page].committed {
            inner.os_pages[page].committed = false;
            inner.committed_pages -= 1;
        }
    }

    /// Releases a fully-evacuated relocation frame: clears its bitmap,
    /// returns it to the free list, and — unlike the baseline allocator —
    /// *decommits* its OS page when the page holds no used frames, shrinking
    /// the footprint. Returns the per-frame live bytes that were dropped.
    pub fn release_frame(&self, ctx: &mut Ctx, frame: u64) {
        let _stripe = self.stripe(frame as u32).lock();
        {
            let mut inner = self.inner_of_frame(frame).lock();
            let st = &mut inner.frames[frame as usize];
            // Note: global live bytes are untouched — the frame's objects
            // were *moved*, not freed; they are still live at their
            // destinations.
            let already_evacuated = st.evacuated;
            st.kind = FrameKind::Free;
            st.alloc = [0; 4];
            st.start = [0; 4];
            st.free_slots = SLOTS_PER_FRAME as u16;
            st.live_bytes = 0;
            st.evacuated = false;
            st.class = None;
            // Purge stale allocator references (the frame may have been an
            // ordinary Active frame, as under Mesh/STW compaction).
            inner.purge(frame as u32);
            inner.free_frames.push(frame as u32);
            if !already_evacuated {
                let page = self.layout.os_page_of_frame(frame) as usize;
                inner.os_pages[page].used_frames -= 1;
                if inner.os_pages[page].used_frames == 0 && inner.os_pages[page].committed {
                    inner.os_pages[page].committed = false;
                    inner.committed_pages -= 1;
                }
            }
        }
        let rec = [0u8; 64];
        self.write_bitmap_record(ctx, frame as u32, &rec);
    }

    // ---- fragmentation metrics ---------------------------------------------------

    /// Current statistics (the paper's fragR metric), summed over shards.
    pub fn stats(&self) -> PoolStats {
        let mut live = 0u64;
        let mut pages = 0u64;
        for s in self.shards.iter() {
            let inner = s.lock();
            live += inner.live_bytes;
            pages += inner.committed_pages;
        }
        let footprint = pages * self.layout.os_page_size;
        PoolStats {
            live_bytes: live,
            footprint_bytes: footprint,
            committed_pages: pages,
            frag_ratio: if live == 0 {
                1.0
            } else {
                footprint as f64 / live as f64
            },
        }
    }

    /// [`PmPool::stats`] restricted to one shard (per-shard GC triggers).
    pub fn shard_stats(&self, shard: usize) -> PoolStats {
        let inner = self.shards[shard].lock();
        let footprint = inner.committed_pages * self.layout.os_page_size;
        let live = inner.live_bytes;
        PoolStats {
            live_bytes: live,
            footprint_bytes: footprint,
            committed_pages: inner.committed_pages,
            frag_ratio: if live == 0 {
                1.0
            } else {
                footprint as f64 / live as f64
            },
        }
    }

    /// Indices of frames currently holding ordinary allocations.
    pub fn active_frames(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for (s, m) in self.shards.iter().enumerate() {
            let inner = m.lock();
            out.extend(
                (0..inner.frames.len())
                    .filter(|&i| {
                        self.shard_of_frame(i as u64) == s
                            && inner.frames[i].kind == FrameKind::Active
                    })
                    .map(|i| i as u64),
            );
        }
        out.sort_unstable();
        out
    }

    /// (live bytes, free slots) for an active frame — the summary phase's
    /// per-page fragmentation statistic.
    pub fn frame_occupancy(&self, frame: u64) -> (u32, u16) {
        let inner = self.inner_of_frame(frame).lock();
        let st = &inner.frames[frame as usize];
        (st.live_bytes, st.free_slots)
    }

    /// Test oracle: every shard's volatile bookkeeping (free list, partial
    /// lists, active map, page accounting) must reference only frames and
    /// pages that shard owns, and no frame may appear on two shards' lists.
    ///
    /// # Panics
    ///
    /// Panics when a shard references a frame or page it does not own.
    pub fn assert_shard_ownership(&self) {
        let mut seen: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (s, m) in self.shards.iter().enumerate() {
            let inner = m.lock();
            let listed = inner
                .free_frames
                .iter()
                .chain(inner.partial.values().flatten())
                .chain(inner.active.values());
            for &f in listed {
                assert_eq!(
                    self.shard_of_frame(f as u64),
                    s,
                    "shard {s} lists frame {f} owned by shard {}",
                    self.shard_of_frame(f as u64)
                );
                if let Some(&other) = seen.get(&f) {
                    assert_eq!(other, s, "frame {f} listed by shards {other} and {s}");
                }
                seen.insert(f, s);
            }
            for (pi, p) in inner.os_pages.iter().enumerate() {
                if pi % self.nshards != s {
                    assert!(
                        !p.committed && p.used_frames == 0,
                        "shard {s} accounts foreign page {pi}"
                    );
                }
            }
        }
    }
}

/// Validation helper: dumps every live object in the pool (direct reads).
pub fn peek_all_objects(pool: &PmPool) -> Vec<FrameObject> {
    let mut out = Vec::new();
    for f in 0..pool.layout().num_frames {
        let st = pool.frame_state(f);
        if st.kind == FrameKind::Active || st.kind == FrameKind::Huge {
            out.extend(pool.peek_frame_objects(f));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeDesc;

    fn test_pool() -> (PmPool, Ctx, TypeId) {
        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeDesc::new("node", 128, &[0]));
        let pool = PmPool::create(PoolConfig::small_for_tests(), reg).expect("create");
        let ctx = Ctx::new(pool.machine());
        (pool, ctx, t)
    }

    #[test]
    fn alloc_write_read_free() {
        let (pool, mut ctx, t) = test_pool();
        let p = pool.pmalloc(&mut ctx, t, 128).expect("alloc");
        pool.write_u64(&mut ctx, p, 0, 7);
        pool.write_u64(&mut ctx, p, 120, 9);
        assert_eq!(pool.read_u64(&mut ctx, p, 0), 7);
        assert_eq!(pool.read_u64(&mut ctx, p, 120), 9);
        let (ty, size) = pool.object_header(&mut ctx, p);
        assert_eq!(ty, t);
        assert_eq!(size, 128);
        pool.pfree(&mut ctx, p).expect("free");
    }

    #[test]
    fn retire_arena_returns_orphan_frames_to_service() {
        let (pool, mut ctx, t) = test_pool();
        // Arena 7 (a "dead thread's" arena) claims an active bump frame.
        ctx.set_arena(7);
        let p = pool.pmalloc(&mut ctx, t, 128).expect("orphan alloc");
        let (frame, _) = pool.locate(p).expect("locate");
        {
            let inner = pool.shards[pool.shard_of_frame(frame as u64)].lock();
            assert!(
                inner.active.values().any(|&f| f == frame),
                "frame is the orphan arena's active frame"
            );
        }
        pool.retire_arena(7);
        {
            let inner = pool.shards[pool.shard_of_frame(frame as u64)].lock();
            assert!(
                !inner.active.values().any(|&f| f == frame),
                "retired arena holds no active frames"
            );
            assert!(
                inner.partial.values().any(|v| v.contains(&frame)),
                "orphan's partially-used frame is back on the partial list"
            );
        }
        // Another arena can now bump-allocate straight out of it.
        ctx.set_arena(0);
        let q = pool.pmalloc(&mut ctx, t, 128).expect("survivor alloc");
        let (frame2, _) = pool.locate(q).expect("locate");
        assert_eq!(frame2, frame, "survivor reuses the orphan's frame");
        // Retiring an arena with nothing claimed (or twice) is a no-op.
        pool.retire_arena(7);
        pool.retire_arena(99);
    }

    #[test]
    fn retire_arena_after_full_free_is_a_noop() {
        let (pool, mut ctx, t) = test_pool();
        let free_before = pool.shards[0].lock().free_frames.len();
        // Freeing the arena's only object already purges the frame from
        // the active map (pfree's fully-freed transition); retiring the
        // arena afterwards must change nothing.
        ctx.set_arena(5);
        let p = pool.pmalloc(&mut ctx, t, 128).expect("alloc");
        pool.pfree(&mut ctx, p).expect("free");
        pool.retire_arena(5);
        let inner = pool.shards[0].lock();
        assert!(!inner.active.keys().any(|(a, _)| *a == 5));
        assert_eq!(inner.free_frames.len(), free_before);
    }

    #[test]
    fn double_free_rejected() {
        let (pool, mut ctx, t) = test_pool();
        let p = pool.pmalloc(&mut ctx, t, 128).expect("alloc");
        pool.pfree(&mut ctx, p).expect("first free");
        assert!(matches!(
            pool.pfree(&mut ctx, p),
            Err(PoolError::InvalidPointer { .. })
        ));
    }

    #[test]
    fn null_and_garbage_pointers_rejected() {
        let (pool, mut ctx, _) = test_pool();
        assert!(pool.pfree(&mut ctx, PmPtr::NULL).is_err());
        assert!(pool.pfree(&mut ctx, PmPtr::new(1, 4)).is_err());
    }

    #[test]
    fn distinct_objects_do_not_alias() {
        let (pool, mut ctx, t) = test_pool();
        let a = pool.pmalloc(&mut ctx, t, 128).expect("a");
        let b = pool.pmalloc(&mut ctx, t, 128).expect("b");
        assert_ne!(a, b);
        pool.write_u64(&mut ctx, a, 0, 1);
        pool.write_u64(&mut ctx, b, 0, 2);
        assert_eq!(pool.read_u64(&mut ctx, a, 0), 1);
        assert_eq!(pool.read_u64(&mut ctx, b, 0), 2);
    }

    #[test]
    fn objects_never_span_frames() {
        let (pool, mut ctx, t) = test_pool();
        for _ in 0..200 {
            let p = pool.pmalloc(&mut ctx, t, 120).expect("alloc");
            let start = p.offset() - OBJ_HEADER_BYTES;
            let end = p.offset() + 120;
            assert_eq!(
                pool.layout().frame_of(start),
                pool.layout().frame_of(end - 1),
                "object must stay inside one 4 KiB frame"
            );
        }
    }

    #[test]
    fn footprint_grows_and_baseline_never_decommits() {
        let (pool, mut ctx, t) = test_pool();
        let mut ptrs = Vec::new();
        for _ in 0..300 {
            ptrs.push(pool.pmalloc(&mut ctx, t, 128).expect("alloc"));
        }
        let grown = pool.stats();
        assert!(grown.committed_pages >= 10);
        for p in ptrs {
            pool.pfree(&mut ctx, p).expect("free");
        }
        let after = pool.stats();
        assert_eq!(after.live_bytes, 0);
        assert_eq!(
            after.committed_pages, grown.committed_pages,
            "baseline allocator keeps pages committed after frees"
        );
    }

    #[test]
    fn frag_ratio_reflects_holes() {
        let (pool, mut ctx, t) = test_pool();
        let mut ptrs = Vec::new();
        for _ in 0..280 {
            ptrs.push(pool.pmalloc(&mut ctx, t, 128).expect("alloc"));
        }
        let before = pool.stats().frag_ratio;
        // Free 3 of every 4 objects: live drops, footprint stays.
        for (i, p) in ptrs.iter().enumerate() {
            if i % 4 != 0 {
                pool.pfree(&mut ctx, *p).expect("free");
            }
        }
        let after = pool.stats().frag_ratio;
        assert!(
            after > before * 2.0,
            "fragmentation must jump after scattered frees: {before} -> {after}"
        );
    }

    #[test]
    fn freed_space_is_reused() {
        let (pool, mut ctx, t) = test_pool();
        let mut ptrs = Vec::new();
        for _ in 0..280 {
            ptrs.push(pool.pmalloc(&mut ctx, t, 128).expect("alloc"));
        }
        let pages_before = pool.stats().committed_pages;
        for p in ptrs.drain(..) {
            pool.pfree(&mut ctx, p).expect("free");
        }
        for _ in 0..280 {
            ptrs.push(pool.pmalloc(&mut ctx, t, 128).expect("alloc"));
        }
        let pages_after = pool.stats().committed_pages;
        assert_eq!(
            pages_before, pages_after,
            "allocator must reuse freed frames instead of growing"
        );
    }

    #[test]
    fn huge_allocation_roundtrip() {
        let (pool, mut ctx, t) = test_pool();
        let p = pool.pmalloc(&mut ctx, t, 10_000).expect("huge alloc");
        pool.write_u64(&mut ctx, p, 9_992, 0x55);
        assert_eq!(pool.read_u64(&mut ctx, p, 9_992), 0x55);
        let live = pool.stats().live_bytes;
        assert!(live >= 10_000);
        pool.pfree(&mut ctx, p).expect("huge free");
        assert_eq!(pool.stats().live_bytes, 0);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeDesc::new("blob", 0, &[]));
        let pool = PmPool::create(
            PoolConfig {
                data_bytes: 16 << 10,
                ..PoolConfig::small_for_tests()
            },
            reg,
        )
        .expect("create");
        let mut ctx = Ctx::new(pool.machine());
        let mut got_oom = false;
        for _ in 0..100 {
            match pool.pmalloc(&mut ctx, t, 1024) {
                Ok(_) => {}
                Err(PoolError::OutOfMemory { .. }) => {
                    got_oom = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(got_oom);
    }

    #[test]
    fn root_roundtrip_persists() {
        let (pool, mut ctx, t) = test_pool();
        let p = pool.pmalloc(&mut ctx, t, 128).expect("alloc");
        pool.set_root(&mut ctx, p);
        assert_eq!(pool.root(&mut ctx), p);
        let img = pool.engine().crash_image();
        assert_eq!(img.media().read_u64(HDR_ROOT), p.raw());
    }

    #[test]
    fn reopen_rebuilds_allocator_state() {
        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeDesc::new("node", 128, &[0]));
        let pool = PmPool::create(PoolConfig::small_for_tests(), reg.clone()).expect("create");
        let mut ctx = Ctx::new(pool.machine());
        let mut ptrs = Vec::new();
        for i in 0..50u64 {
            let p = pool.pmalloc(&mut ctx, t, 128).expect("alloc");
            pool.write_u64(&mut ctx, p, 0, i);
            pool.persist(&mut ctx, p, 0, 8);
            ptrs.push(p);
        }
        pool.pfree(&mut ctx, ptrs[10]).expect("free");
        pool.set_root(&mut ctx, ptrs[0]);
        let stats_before = pool.stats();

        let img = pool.engine().crash_image();
        let pool2 = PmPool::open(img.restart(), reg).expect("open");
        let mut ctx2 = Ctx::new(pool2.machine());
        let stats_after = pool2.stats();
        assert_eq!(stats_after.live_bytes, stats_before.live_bytes);
        assert_eq!(pool2.root(&mut ctx2), ptrs[0]);
        // Data persisted before the crash is readable.
        assert_eq!(pool2.read_u64(&mut ctx2, ptrs[5], 0), 5);
        // Freed slot is reusable: allocate and verify no overlap with live.
        let fresh = pool2.pmalloc(&mut ctx2, t, 128).expect("realloc");
        assert!(ptrs.iter().all(|&p| p == ptrs[10] || p != fresh));
    }

    #[test]
    fn reopen_rebuilds_huge_objects() {
        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeDesc::new("blob", 0, &[]));
        let pool = PmPool::create(PoolConfig::small_for_tests(), reg.clone()).expect("create");
        let mut ctx = Ctx::new(pool.machine());
        let p = pool.pmalloc(&mut ctx, t, 9000).expect("huge");
        pool.write_u64(&mut ctx, p, 0, 0xAB);
        pool.persist(&mut ctx, p, 0, 8);
        let live = pool.stats().live_bytes;
        let img = pool.engine().crash_image();
        let pool2 = PmPool::open(img.restart(), reg).expect("open");
        assert_eq!(pool2.stats().live_bytes, live);
        let mut ctx2 = Ctx::new(pool2.machine());
        assert_eq!(pool2.read_u64(&mut ctx2, p, 0), 0xAB);
        pool2.pfree(&mut ctx2, p).expect("free after reopen");
        assert_eq!(pool2.stats().live_bytes, 0);
    }

    #[test]
    fn destination_and_release_cycle() {
        let (pool, mut ctx, t) = test_pool();
        // Fill some frames.
        let mut ptrs = Vec::new();
        for _ in 0..100 {
            ptrs.push(pool.pmalloc(&mut ctx, t, 128).expect("alloc"));
        }
        let pages_full = pool.stats().committed_pages;
        let dest = pool.take_destination_frame(&mut ctx).expect("dest");
        pool.reserve_destination_slots(&mut ctx, dest, 0, 9, 144);
        assert_eq!(pool.frame_state(dest).kind, FrameKind::Destination);
        pool.finish_destination_frame(dest);
        assert_eq!(pool.frame_state(dest).kind, FrameKind::Active);
        // Release one of the full frames and verify footprint can drop.
        let frame = pool.layout().frame_of(ptrs[0].offset()).expect("frame");
        pool.set_frame_kind(frame, FrameKind::Relocation);
        pool.release_frame(&mut ctx, frame);
        assert_eq!(pool.frame_state(frame).kind, FrameKind::Free);
        let after = pool.stats().committed_pages;
        assert!(after <= pages_full + 1);
    }

    #[test]
    fn va_mapping_roundtrip_and_relocatability() {
        let (pool, mut ctx, t) = test_pool();
        let p = pool.pmalloc(&mut ctx, t, 128).expect("alloc");
        let va = pool.va_of(p);
        assert_eq!(pool.ptr_of_va(va), p);
        pool.set_base(0x7000_0000_0000);
        let va2 = pool.va_of(p);
        assert_ne!(va, va2);
        assert_eq!(pool.ptr_of_va(va2), p);
    }

    #[test]
    fn frame_objects_enumeration() {
        let (pool, mut ctx, t) = test_pool();
        let a = pool.pmalloc(&mut ctx, t, 128).expect("a");
        let b = pool.pmalloc(&mut ctx, t, 128).expect("b");
        let frame = pool.layout().frame_of(a.offset()).expect("frame");
        let objs = pool.frame_objects(&mut ctx, frame);
        assert!(objs.iter().any(|o| o.ptr == a && o.size == 128));
        assert!(objs.iter().any(|o| o.ptr == b && o.size == 128));
        for o in &objs {
            assert_eq!(o.type_id, t);
        }
    }

    #[test]
    fn size_classes_segregate_frames() {
        // PMDK-style class segregation: a 128-byte object and a 64-byte
        // object land in different frames, and a hole freed in one class
        // is not refilled by the other class's allocations.
        let (pool, mut ctx, t) = test_pool();
        let big = pool.pmalloc(&mut ctx, t, 128).expect("big");
        let small = pool.pmalloc(&mut ctx, t, 64).expect("small");
        assert_ne!(
            pool.layout().frame_of(big.offset()),
            pool.layout().frame_of(small.offset()),
            "different classes must use different frames"
        );
        let big_frame = pool.layout().frame_of(big.offset()).expect("frame");
        pool.pfree(&mut ctx, big).expect("free");
        // A small allocation must not land in the vacated big-class frame.
        let small2 = pool.pmalloc(&mut ctx, t, 64).expect("small2");
        assert_ne!(pool.layout().frame_of(small2.offset()), Some(big_frame));
    }

    /// Two contexts in different arenas bump-allocate from different
    /// frames, so concurrent mutator threads do not fight over one active
    /// frame per size class.
    #[test]
    fn arenas_bump_in_distinct_frames() {
        let (pool, _ctx, t) = test_pool();
        let mut a = Ctx::new(pool.machine());
        let mut b = Ctx::new(pool.machine());
        b.set_arena(1);
        let pa = pool.pmalloc(&mut a, t, 128).expect("arena 0");
        let pb = pool.pmalloc(&mut b, t, 128).expect("arena 1");
        assert_ne!(
            pool.layout().frame_of(pa.offset()),
            pool.layout().frame_of(pb.offset()),
            "different arenas must use different active frames"
        );
        // Same arena keeps bumping in its own frame.
        let pa2 = pool.pmalloc(&mut a, t, 128).expect("arena 0 again");
        assert_eq!(
            pool.layout().frame_of(pa.offset()),
            pool.layout().frame_of(pa2.offset())
        );
    }

    /// Free-running allocator hammer: no turn-taking, every thread in its
    /// own arena, mixed alloc/free. The verify-and-reserve commit must
    /// never hand two threads overlapping slot runs (the old pick/commit
    /// split could: candidate selection and reservation were separate
    /// lock acquisitions), and the aggregate accounting must balance.
    #[test]
    fn concurrent_alloc_free_never_collides() {
        use std::collections::BTreeSet;
        use std::sync::Arc;

        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeDesc::new("node", 128, &[0]));
        let pool = Arc::new(
            PmPool::create(
                PoolConfig {
                    data_bytes: 8 << 20,
                    ..PoolConfig::small_for_tests()
                },
                reg,
            )
            .expect("create"),
        );
        let threads = 4u32;
        let per = 400u64;
        let kept: Vec<Vec<(PmPtr, u64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let mut ctx = Ctx::new(pool.machine());
                        ctx.set_arena(tid);
                        let mut mine: Vec<(PmPtr, u64)> = Vec::new();
                        for i in 0..per {
                            let tag = (tid as u64) << 32 | i;
                            let p = pool.pmalloc(&mut ctx, t, 128).expect("alloc");
                            pool.write_u64(&mut ctx, p, 0, tag);
                            mine.push((p, tag));
                            // Free an older object every third op to keep
                            // partial frames churning across threads.
                            if i % 3 == 2 {
                                let (q, _) = mine.swap_remove(mine.len() / 2);
                                pool.pfree(&mut ctx, q).expect("free");
                            }
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        // No two live objects alias, and every tag survived intact.
        let mut ctx = Ctx::new(pool.machine());
        let all: Vec<&(PmPtr, u64)> = kept.iter().flatten().collect();
        let distinct: BTreeSet<u64> = all.iter().map(|(p, _)| p.raw()).collect();
        assert_eq!(distinct.len(), all.len(), "allocations must not alias");
        for (p, tag) in &all {
            assert_eq!(pool.read_u64(&mut ctx, *p, 0), *tag, "payload intact");
        }
        let expected_live = all.len() as u64 * (128 + OBJ_HEADER_BYTES);
        assert_eq!(
            pool.stats().live_bytes,
            expected_live,
            "accounting balances"
        );
    }

    /// Sharded pools keep each shard's bookkeeping on its own frames and
    /// reload the shard count from the media header on reopen.
    #[test]
    fn sharded_ownership_survives_racing_mutators() {
        use std::sync::Arc;

        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeDesc::new("node", 128, &[0]));
        let pool = Arc::new(
            PmPool::create_sharded(
                PoolConfig {
                    data_bytes: 8 << 20,
                    ..PoolConfig::small_for_tests()
                },
                reg.clone(),
                4,
            )
            .expect("create"),
        );
        assert_eq!(pool.num_shards(), 4);
        let kept: Vec<Vec<PmPtr>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u32)
                .map(|tid| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let mut ctx = Ctx::new(pool.machine());
                        ctx.set_arena(tid);
                        let mut mine = Vec::new();
                        for i in 0..300u64 {
                            let p = pool.pmalloc(&mut ctx, t, 64 + (i % 3) * 64).expect("alloc");
                            mine.push(p);
                            if i % 3 == 2 {
                                let q = mine.swap_remove(mine.len() / 2);
                                pool.pfree(&mut ctx, q).expect("free");
                            }
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("ok")).collect()
        });
        pool.assert_shard_ownership();
        // Arena-homed allocations land on the arena's home shard unless
        // stolen; at this fill level nothing should have been stolen, so
        // the per-thread frame sets are disjoint.
        let mut owners: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (tid, ptrs) in kept.iter().enumerate() {
            for p in ptrs {
                let f = pool.layout().frame_of(p.offset()).expect("in pool");
                if let Some(&prev) = owners.get(&f) {
                    assert_eq!(prev, tid as u32, "frame {f} shared across arenas");
                }
                owners.insert(f, tid as u32);
            }
        }
        // Reopen: shard count comes back from the header and the rebuilt
        // lists respect ownership.
        let img = pool.engine().crash_image();
        let pool2 = PmPool::open(img.restart(), reg).expect("open");
        assert_eq!(pool2.num_shards(), 4);
        pool2.assert_shard_ownership();
        assert_eq!(pool2.stats().live_bytes, pool.stats().live_bytes);
    }

    /// When a shard runs dry the allocator borrows donor frames instead of
    /// reporting OOM, and the donor's bookkeeping keeps the frame.
    #[test]
    fn exhausted_shard_steals_from_donors() {
        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeDesc::new("blob", 0, &[]));
        let pool = PmPool::create_sharded(
            PoolConfig {
                data_bytes: 64 << 10, // 16 frames over 4 shards
                ..PoolConfig::small_for_tests()
            },
            reg,
            4,
        )
        .expect("create");
        let mut ctx = Ctx::new(pool.machine());
        ctx.set_arena(0); // home shard 0 owns only 4 frames
        let mut got = Vec::new();
        // 3968-byte objects fill a frame each; 12 allocations must spill
        // past shard 0's 4 frames into donors.
        for _ in 0..12 {
            got.push(
                pool.pmalloc(&mut ctx, t, 3968)
                    .expect("steal instead of OOM"),
            );
        }
        let frames: std::collections::BTreeSet<u64> = got
            .iter()
            .map(|p| pool.layout().frame_of(p.offset()).expect("in pool"))
            .collect();
        assert_eq!(frames.len(), 12);
        assert!(
            frames
                .iter()
                .any(|&f| pool.layout().shard_of_frame(f, 4) != 0),
            "some frames must come from donor shards"
        );
        pool.assert_shard_ownership();
        for p in got {
            pool.pfree(&mut ctx, p).expect("free");
        }
        pool.assert_shard_ownership();
        assert_eq!(pool.stats().live_bytes, 0);
    }

    #[test]
    fn open_rejects_garbage_media() {
        let engine = PmEngine::new(MachineConfig::default(), 1 << 16);
        assert!(matches!(
            PmPool::open(engine, TypeRegistry::new()),
            Err(PoolError::BadPool { .. })
        ));
    }
}
