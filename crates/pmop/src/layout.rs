//! Pool media layout: header, persistent bitmaps, GC metadata, data frames.

/// Allocation granularity: 16-byte slots (glibc alignment, paper §4.3.1).
pub const SLOT_BYTES: u64 = 16;

/// Compaction / forwarding-table granularity: 4 KiB frames. Huge OS pages
/// still use 4 KiB granularity for forwarding info (paper §4.3.1).
pub const FRAME_BYTES: u64 = 4096;

/// Object header preceding every payload: `type_id:u32 | size:u32` packed in
/// word 0, word 1 reserved.
pub const OBJ_HEADER_BYTES: u64 = 16;

/// Byte offsets of the regions inside a pool's media.
///
/// ```text
/// 0                 header frame (root ptr, geometry, magic)
/// bitmaps_start     one 64-byte record per frame:
///                     bytes 0..32  alloc bitmap (1 bit per 16-byte slot)
///                     bytes 32..64 object-start bitmap
/// meta_start        GC metadata arena (owned by the ffccd crate: cycle
///                     header, moved bitmaps, reached bitmap, PMFT)
/// data_start        num_frames × 4 KiB data frames
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolLayout {
    /// Total media bytes.
    pub total_bytes: u64,
    /// Number of 4 KiB data frames.
    pub num_frames: u64,
    /// OS page size for footprint accounting (4 KiB or 2 MiB).
    pub os_page_size: u64,
    /// Start of the per-frame persistent bitmap records.
    pub bitmaps_start: u64,
    /// Start of the GC metadata arena.
    pub meta_start: u64,
    /// Bytes reserved for GC metadata.
    pub meta_len: u64,
    /// Start of data frames.
    pub data_start: u64,
}

/// Bytes of GC metadata reserved per frame: moved bitmap (32 B) + reached
/// bitmap word (8 B) + PMFT entry (≈259 B rounded to 320 B) + cycle header
/// amortization.
pub const META_BYTES_PER_FRAME: u64 = 384;

/// Fixed header size (one frame).
pub const HEADER_BYTES: u64 = FRAME_BYTES;

impl PoolLayout {
    /// Computes the layout for `data_bytes` of heap with `os_page_size`
    /// footprint granularity.
    ///
    /// # Panics
    ///
    /// Panics if `os_page_size` is not a multiple of [`FRAME_BYTES`] or
    /// `data_bytes` is zero.
    pub fn compute(data_bytes: u64, os_page_size: u64) -> Self {
        assert!(data_bytes > 0, "pool must have data space");
        assert!(
            os_page_size >= FRAME_BYTES && os_page_size.is_multiple_of(FRAME_BYTES),
            "OS page size must be a multiple of the 4 KiB frame"
        );
        // Round data up to whole OS pages.
        let data_bytes = data_bytes.div_ceil(os_page_size) * os_page_size;
        let num_frames = data_bytes / FRAME_BYTES;
        let bitmaps_len = num_frames * 64;
        let meta_len = num_frames * META_BYTES_PER_FRAME + FRAME_BYTES;
        let bitmaps_start = HEADER_BYTES;
        let meta_start = align_up(bitmaps_start + bitmaps_len, FRAME_BYTES);
        let data_start = align_up(meta_start + meta_len, os_page_size);
        PoolLayout {
            total_bytes: data_start + data_bytes,
            num_frames,
            os_page_size,
            bitmaps_start,
            meta_start,
            meta_len,
            data_start,
        }
    }

    /// Frames per OS page.
    pub fn frames_per_os_page(&self) -> u64 {
        self.os_page_size / FRAME_BYTES
    }

    /// Number of OS pages in the data region.
    pub fn num_os_pages(&self) -> u64 {
        self.num_frames / self.frames_per_os_page()
    }

    /// Byte offset of data frame `frame`.
    pub fn frame_start(&self, frame: u64) -> u64 {
        debug_assert!(frame < self.num_frames);
        self.data_start + frame * FRAME_BYTES
    }

    /// Data frame containing pool byte offset `off`, or `None` if `off` is
    /// outside the data region.
    pub fn frame_of(&self, off: u64) -> Option<u64> {
        if off < self.data_start || off >= self.data_start + self.num_frames * FRAME_BYTES {
            return None;
        }
        Some((off - self.data_start) / FRAME_BYTES)
    }

    /// OS page index of data frame `frame`.
    pub fn os_page_of_frame(&self, frame: u64) -> u64 {
        frame / self.frames_per_os_page()
    }

    /// Byte offset of the 64-byte bitmap record for `frame`.
    pub fn bitmap_record(&self, frame: u64) -> u64 {
        debug_assert!(frame < self.num_frames);
        self.bitmaps_start + frame * 64
    }

    /// GC shard owning `frame`: OS pages are dealt round-robin across
    /// shards, so frames sharing an OS page always share a shard (page
    /// commit/decommit accounting stays shard-local).
    pub fn shard_of_frame(&self, frame: u64, shards: usize) -> usize {
        (self.os_page_of_frame(frame) % shards.max(1) as u64) as usize
    }
}

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

// -- header field offsets (within frame 0) -----------------------------------

/// Pool header magic value (the groups spell FFCCD / ISCA / 2022).
#[allow(clippy::unusual_byte_groupings)]
pub const POOL_MAGIC: u64 = 0xFFCC_D_15C_A220_22;
/// Offset of the magic word.
pub const HDR_MAGIC: u64 = 0;
/// Offset of the OS page size word.
pub const HDR_OS_PAGE: u64 = 8;
/// Offset of the frame count word.
pub const HDR_NUM_FRAMES: u64 = 16;
/// Offset of the root pointer word.
pub const HDR_ROOT: u64 = 24;
/// Offset of the heap shard-count word. Zero means one shard — the word is
/// only written when the pool is created with more than one shard, so
/// single-shard media stays byte-identical with pre-sharding pools.
pub const HDR_SHARDS: u64 = 32;
/// Hard cap on heap shards: the per-shard 16-byte cycle headers must fit in
/// the single 64-byte cycle-header block of the GC metadata arena.
pub const MAX_SHARDS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        for (data, page) in [(1 << 20, 4096), (8 << 20, 2 << 20), (4097, 4096)] {
            let l = PoolLayout::compute(data, page);
            assert!(l.bitmaps_start >= HEADER_BYTES);
            assert!(l.meta_start >= l.bitmaps_start + l.num_frames * 64);
            assert!(l.data_start >= l.meta_start + l.meta_len);
            assert_eq!(l.data_start % page, 0);
            assert_eq!(l.total_bytes, l.data_start + l.num_frames * FRAME_BYTES);
        }
    }

    #[test]
    fn frame_math_roundtrips() {
        let l = PoolLayout::compute(1 << 20, 4096);
        for f in [0, 1, l.num_frames - 1] {
            let start = l.frame_start(f);
            assert_eq!(l.frame_of(start), Some(f));
            assert_eq!(l.frame_of(start + FRAME_BYTES - 1), Some(f));
        }
        assert_eq!(l.frame_of(0), None, "header is not a data frame");
        assert_eq!(l.frame_of(l.data_start - 1), None);
    }

    #[test]
    fn huge_pages_group_frames() {
        let l = PoolLayout::compute(8 << 20, 2 << 20);
        assert_eq!(l.frames_per_os_page(), 512);
        assert_eq!(l.num_os_pages(), 4);
        assert_eq!(l.os_page_of_frame(511), 0);
        assert_eq!(l.os_page_of_frame(512), 1);
    }

    #[test]
    fn data_rounds_up_to_os_pages() {
        let l = PoolLayout::compute(5000, 4096);
        assert_eq!(l.num_frames, 2);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_page_size_panics() {
        let _ = PoolLayout::compute(1 << 20, 1000);
    }
}
