//! Offset-based persistent pointers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 64-bit persistent pointer: pool id in the top 16 bits, byte offset
/// within the pool in the low 48 bits (paper §2.2.1).
///
/// Offsets make pointers *relocatable*: the pool may map at a different
/// virtual base in every run, and pointers remain valid. The null pointer is
/// the all-zero value.
///
/// # Example
///
/// ```
/// use ffccd_pmop::PmPtr;
/// let p = PmPtr::new(1, 0x1000);
/// assert_eq!(p.pool_id(), 1);
/// assert_eq!(p.offset(), 0x1000);
/// assert!(!p.is_null());
/// assert!(PmPtr::NULL.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PmPtr(u64);

impl PmPtr {
    /// The null persistent pointer.
    pub const NULL: PmPtr = PmPtr(0);

    /// Maximum representable offset (48 bits).
    pub const MAX_OFFSET: u64 = (1 << 48) - 1;

    /// Creates a pointer into pool `pool_id` at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds 48 bits or if `pool_id == 0` (pool id 0 is
    /// reserved so that the all-zero encoding means null).
    pub fn new(pool_id: u16, offset: u64) -> Self {
        assert!(offset <= Self::MAX_OFFSET, "offset exceeds 48 bits");
        assert!(pool_id != 0, "pool id 0 is reserved for null");
        PmPtr(((pool_id as u64) << 48) | offset)
    }

    /// Reconstructs a pointer from its raw persisted representation.
    pub fn from_raw(raw: u64) -> Self {
        PmPtr(raw)
    }

    /// The raw representation stored in PM.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The owning pool id (0 for null).
    pub fn pool_id(self) -> u16 {
        (self.0 >> 48) as u16
    }

    /// Byte offset within the pool.
    pub fn offset(self) -> u64 {
        self.0 & Self::MAX_OFFSET
    }

    /// Whether this is the null pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// A pointer to the same pool at `offset + delta`.
    ///
    /// Named after `std::ptr::add` deliberately — it is pointer arithmetic.
    ///
    /// # Panics
    ///
    /// Panics on null or on 48-bit overflow.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, delta: u64) -> Self {
        assert!(!self.is_null(), "cannot offset the null pointer");
        PmPtr::new(self.pool_id(), self.offset() + delta)
    }
}

impl fmt::Debug for PmPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PmPtr(NULL)")
        } else {
            write!(f, "PmPtr({}:{:#x})", self.pool_id(), self.offset())
        }
    }
}

impl fmt::Display for PmPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fields() {
        let p = PmPtr::new(7, 0x0000_1234_5678);
        assert_eq!(p.pool_id(), 7);
        assert_eq!(p.offset(), 0x0000_1234_5678);
        assert_eq!(PmPtr::from_raw(p.raw()), p);
    }

    #[test]
    fn null_is_zero() {
        assert_eq!(PmPtr::NULL.raw(), 0);
        assert_eq!(PmPtr::default(), PmPtr::NULL);
        assert_eq!(PmPtr::NULL.pool_id(), 0);
    }

    #[test]
    fn add_moves_offset() {
        let p = PmPtr::new(1, 100).add(28);
        assert_eq!(p.offset(), 128);
        assert_eq!(p.pool_id(), 1);
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn oversized_offset_panics() {
        let _ = PmPtr::new(1, 1 << 48);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn pool_zero_panics() {
        let _ = PmPtr::new(0, 8);
    }

    #[test]
    fn debug_shows_pool_and_offset() {
        let s = format!("{:?}", PmPtr::new(2, 0x40));
        assert!(s.contains('2') && s.contains("0x40"), "{s}");
        assert_eq!(format!("{:?}", PmPtr::NULL), "PmPtr(NULL)");
    }
}
