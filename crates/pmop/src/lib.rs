//! PMOP programming model — a `libpmemobj`-like persistent object pool.
//!
//! The FFCCD paper builds on three properties of PM programming models
//! (paper §3.1) that make compacting GC possible in C/C++:
//!
//! 1. **Root nodes** — every pool records the entry points of its data
//!    structures ([`PmPool::set_root`] / [`PmPool::root`]).
//! 2. **Typed allocation** — every object records a [`TypeId`] whose
//!    [`TypeDesc`] tells the GC which payload words are references, so
//!    pointers and integers are never confused.
//! 3. **Offset-based persistent pointers** ([`PmPtr`]) — dereferencing goes
//!    through an API (`D_RW`/`D_RO`, implemented in the `ffccd` crate), which
//!    is exactly where a concurrent GC's read barrier can live.
//!
//! The allocator models PMDK's behaviour that matters for fragmentation:
//! objects are carved from 4 KiB *frames* in 16-byte slots; frames group
//! into OS pages (4 KiB or 2 MiB); a page's memory is committed on first use
//! and **never decommitted by the baseline allocator** — only defragmentation
//! releases pages. The fragmentation ratio (footprint / live bytes) is the
//! paper's Figure 1 metric.
//!
//! # Example
//!
//! ```
//! use ffccd_pmem::Ctx;
//! use ffccd_pmop::{PmPool, PoolConfig, TypeDesc, TypeRegistry};
//!
//! let mut reg = TypeRegistry::new();
//! let node = reg.register(TypeDesc::new("node", 16, &[8])); // one ref at offset 8
//! let pool = PmPool::create(PoolConfig::small_for_tests(), reg)?;
//! let mut ctx = Ctx::new(pool.machine());
//! let obj = pool.pmalloc(&mut ctx, node, 16)?;
//! pool.write_u64(&mut ctx, obj, 0, 42);
//! assert_eq!(pool.read_u64(&mut ctx, obj, 0), 42);
//! pool.pfree(&mut ctx, obj)?;
//! # Ok::<(), ffccd_pmop::PoolError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod frame;
mod layout;
mod pool;
mod ptr;
mod types;

pub use error::PoolError;
pub use frame::{FrameKind, FrameState, SLOTS_PER_FRAME};
pub use layout::{
    PoolLayout, FRAME_BYTES, HDR_NUM_FRAMES, HDR_OS_PAGE, HDR_ROOT, HDR_SHARDS, MAX_SHARDS,
    OBJ_HEADER_BYTES, POOL_MAGIC, SLOT_BYTES,
};
pub use pool::{peek_all_objects, FrameObject, PmPool, PoolConfig, PoolStats};
pub use ptr::PmPtr;
pub use types::{TypeDesc, TypeId, TypeRegistry};
