//! Cross-crate integration tests: the whole stack — engine, pool,
//! architecture model, defragmenter, workloads — exercised together.

use ffccd_repro::ffccd::{validate_heap, DefragConfig, DefragHeap, Scheme};
use ffccd_repro::pmem::{Ctx, MachineConfig};
use ffccd_repro::pmop::{PoolConfig, TypeDesc, TypeRegistry};
use ffccd_repro::workloads::driver::{run, DriverConfig, PhaseMix};
use ffccd_repro::workloads::{AvlTree, LinkedList, Pmemkv};

fn small_driver(scheme: Scheme, seed: u64) -> DriverConfig {
    let mut cfg = DriverConfig::new(scheme);
    cfg.mix = PhaseMix::tiny();
    cfg.pool.data_bytes = 8 << 20;
    cfg.pool.machine = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    cfg.seed = seed;
    cfg.defrag.min_live_bytes = 1 << 12;
    cfg
}

#[test]
fn end_to_end_defrag_cuts_footprint() {
    // A tiny mix barely fragments; use enough churn that page quantization
    // and destination-commit transients stop dominating.
    let mut base_cfg = small_driver(Scheme::Baseline, 1);
    base_cfg.mix = PhaseMix {
        init: 2500,
        phase_ops: 2000,
        phases: 3,
    };
    let mut ours_cfg = small_driver(Scheme::FfccdCheckLookup, 1);
    ours_cfg.mix = base_cfg.mix;
    let base = run(&mut LinkedList::new(), &base_cfg);
    let ours = run(&mut LinkedList::new(), &ours_cfg);
    assert!(ours.gc.cycles_completed > 0, "defrag must run");
    assert!(
        ours.avg_frag < base.avg_frag,
        "avg fragR must drop: {} -> {}",
        base.avg_frag,
        ours.avg_frag
    );
}

#[test]
fn scheme_cost_ordering_matches_paper() {
    // Figure 14's central claim: per relocated object, the copy+state cost
    // ranks Espresso > SFCCD > FFCCD (fences removed step by step).
    let mut per_obj = Vec::new();
    for scheme in [Scheme::Espresso, Scheme::Sfccd, Scheme::FfccdFenceFree] {
        let r = run(&mut AvlTree::new(), &small_driver(scheme, 2));
        assert!(r.gc.objects_relocated > 0, "{scheme}: nothing relocated");
        per_obj.push((r.gc.copy_cycles + r.gc.state_cycles) as f64 / r.gc.objects_relocated as f64);
    }
    assert!(
        per_obj[0] > per_obj[1] && per_obj[1] > per_obj[2],
        "copy+state per object must fall as fences go: {per_obj:?}"
    );
}

#[test]
fn checklookup_beats_software_lookup() {
    let soft = run(&mut Pmemkv::new(), &small_driver(Scheme::FfccdFenceFree, 3));
    let hw = run(
        &mut Pmemkv::new(),
        &small_driver(Scheme::FfccdCheckLookup, 3),
    );
    let soft_per = soft.gc.check_lookup_cycles as f64 / soft.gc.barrier_invocations.max(1) as f64;
    let hw_per = hw.gc.check_lookup_cycles as f64 / hw.gc.barrier_invocations.max(1) as f64;
    assert!(
        hw_per < soft_per * 0.6,
        "checklookup must cut check+lookup cost substantially: {soft_per:.1} -> {hw_per:.1} \
         cycles per barrier"
    );
}

#[test]
fn crash_anywhere_in_a_full_run_recovers() {
    // One integration-level fault injection across the whole stack.
    use ffccd_repro::workloads::faults::run_fault_injection;
    for scheme in [Scheme::Sfccd, Scheme::FfccdCheckLookup] {
        let mut w = AvlTree::new();
        let cfg = small_driver(scheme, 4);
        let report = run_fault_injection(&mut w, &|| Box::new(AvlTree::new()), scheme, 4, 5, &cfg);
        assert!(
            report.failures.is_empty(),
            "{scheme}: {:?}",
            report.failures
        );
    }
}

#[test]
fn multithreaded_run_is_consistent() {
    use ffccd_repro::workloads::driver::run_mt;
    let cfg = small_driver(Scheme::FfccdCheckLookup, 5);
    let r = run_mt(&|| Box::new(ffccd_repro::workloads::BzTree::new()), 4, &cfg);
    assert!(r.ops > 0);
    assert!(r.avg_frag >= 1.0);
}

#[test]
fn relocatability_pool_base_can_move_between_runs() {
    // The same persistent data works under a different virtual base.
    let mut reg = TypeRegistry::new();
    let t = reg.register(TypeDesc::new("cell", 16, &[8]));
    let heap = DefragHeap::create(
        PoolConfig::small_for_tests(),
        reg.clone(),
        DefragConfig::normal(Scheme::FfccdCheckLookup),
    )
    .expect("create");
    let mut ctx = heap.ctx();
    let a = heap.alloc(&mut ctx, t, 16).expect("a");
    let b = heap.alloc(&mut ctx, t, 16).expect("b");
    heap.write_u64(&mut ctx, a, 0, 11);
    heap.write_u64(&mut ctx, b, 0, 22);
    heap.store_ref(&mut ctx, a, 8, b);
    heap.persist(&mut ctx, a, 0, 16);
    heap.persist(&mut ctx, b, 0, 16);
    heap.set_root(&mut ctx, a);
    let image = heap.engine().crash_image();
    let (heap2, _) =
        DefragHeap::open_recovered(&image, reg, DefragConfig::normal(Scheme::FfccdCheckLookup))
            .expect("recover");
    // Remap at a different base: offset-based pointers still resolve.
    heap2.pool().set_base(0x7FFF_0000_0000);
    let mut ctx2 = heap2.ctx();
    let a2 = heap2.root(&mut ctx2);
    assert_eq!(heap2.read_u64(&mut ctx2, a2, 0), 11);
    let b2 = heap2.load_ref(&mut ctx2, a2, 8);
    assert_eq!(heap2.read_u64(&mut ctx2, b2, 0), 22);
    validate_heap(&heap2).expect("consistent");
}

#[test]
fn comparator_defragmenters_work_end_to_end() {
    // Mesh and STW on a fragmented baseline heap.
    for use_stw in [false, true] {
        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeDesc::new("node", 128, &[0]));
        let heap = DefragHeap::create(
            PoolConfig {
                data_bytes: 4 << 20,
                ..PoolConfig::small_for_tests()
            },
            reg,
            DefragConfig::baseline(),
        )
        .expect("create");
        let mut ctx = heap.ctx();
        let mut last = ffccd_repro::pmop::PmPtr::NULL;
        let mut all = Vec::new();
        for _ in 0..1000 {
            let n = heap.alloc(&mut ctx, t, 128).expect("alloc");
            heap.store_ref(&mut ctx, n, 0, last);
            heap.persist(&mut ctx, n, 0, 128);
            last = n;
            all.push(n);
        }
        heap.set_root(&mut ctx, last);
        // Free ~70% from the middle of the chain by relinking.
        let mut kept = Vec::new();
        let mut prev = ffccd_repro::pmop::PmPtr::NULL;
        for (i, &n) in all.iter().enumerate().rev() {
            if i % 3 == 0 {
                if prev.is_null() {
                    heap.set_root(&mut ctx, n);
                } else {
                    heap.store_ref(&mut ctx, prev, 0, n);
                }
                prev = n;
                kept.push(n);
            }
        }
        if !prev.is_null() {
            heap.store_ref(&mut ctx, prev, 0, ffccd_repro::pmop::PmPtr::NULL);
        }
        for (i, &n) in all.iter().enumerate() {
            if i % 3 != 0 {
                heap.free(&mut ctx, n).expect("free");
            }
        }
        let before = heap.pool().stats().footprint_bytes;
        let (pause, released) = if use_stw {
            heap.stw_compact(&mut ctx)
        } else {
            heap.mesh_compact(&mut ctx)
        };
        assert!(pause > 0);
        assert!(released > 0, "compactor must release frames");
        let after = heap.pool().stats().footprint_bytes;
        assert!(after < before, "footprint must shrink: {before} -> {after}");
        // Chain is intact.
        let mut count = 0;
        let mut cur = heap.root(&mut ctx);
        while !cur.is_null() {
            count += 1;
            cur = heap.load_ref(&mut ctx, cur, 0);
        }
        assert_eq!(count, kept.len());
    }
}

#[test]
fn ctx_cycle_accounting_is_monotonic() {
    let heap = DefragHeap::create(
        PoolConfig::small_for_tests(),
        TypeRegistry::new(),
        DefragConfig::baseline(),
    )
    .expect("create");
    let mut ctx: Ctx = heap.ctx();
    let c0 = ctx.cycles();
    let _ = heap.root(&mut ctx);
    assert!(ctx.cycles() > c0, "every simulated access costs cycles");
}

#[test]
fn three_generation_lifecycle_with_crashes() {
    // A pool lives through three "process runs" with churn, defrag, a
    // crash and recovery in each generation — the lifetime story the
    // paper's introduction tells, end to end.
    use ffccd_repro::workloads::util::value_pattern;
    let mut reg = TypeRegistry::new();
    let t = reg.register(TypeDesc::new("node", 0, &[0]));
    let cfg = DefragConfig {
        min_live_bytes: 1 << 12,
        cooldown_ops: 128,
        ..DefragConfig::normal(Scheme::FfccdCheckLookup)
    };
    let mut heap = DefragHeap::create(
        PoolConfig {
            data_bytes: 8 << 20,
            ..PoolConfig::small_for_tests()
        },
        reg.clone(),
        cfg,
    )
    .expect("create");

    let mut expected_count = 0u64;
    for generation in 0..3u64 {
        let mut ctx = heap.ctx();
        // Churn: push nodes, drop ~2/3 by relinking every 3rd.
        let mut kept = Vec::new();
        for i in 0..300u64 {
            let n = heap.alloc(&mut ctx, t, 16 + 64).expect("alloc");
            heap.write_u64(&mut ctx, n, 8, generation * 1000 + i);
            let mut val = vec![0u8; 64];
            value_pattern(generation * 1000 + i, &mut val);
            heap.write_bytes(&mut ctx, n, 16, &val);
            let head = heap.root(&mut ctx);
            heap.store_ref(&mut ctx, n, 0, head);
            heap.persist(&mut ctx, n, 0, 80);
            heap.set_root(&mut ctx, n);
            kept.push(n);
        }
        expected_count += 300;
        // Unlink every node with (value % 3 != 0).
        let mut prev = ffccd_repro::pmop::PmPtr::NULL;
        let mut cur = heap.root(&mut ctx);
        while !cur.is_null() {
            let next = heap.load_ref(&mut ctx, cur, 0);
            let v = heap.read_u64(&mut ctx, cur, 8);
            if !v.is_multiple_of(3) && v / 1000 == generation {
                if prev.is_null() {
                    heap.set_root(&mut ctx, next);
                } else {
                    heap.store_ref(&mut ctx, prev, 0, next);
                }
                heap.free(&mut ctx, cur).expect("free");
                expected_count -= 1;
            } else {
                prev = cur;
            }
            cur = next;
        }
        // Defrag, crash mid-cycle, recover into the next generation.
        heap.maybe_defrag(&mut ctx);
        heap.step_compaction(&mut ctx, 25);
        let image = heap.engine().crash_image();
        let (next_heap, _) =
            DefragHeap::open_recovered(&image, reg.clone(), cfg).expect("generation recovery");
        validate_heap(&next_heap).unwrap_or_else(|e| panic!("gen {generation}: {e:?}"));
        // Count the list.
        let mut ctx2 = next_heap.ctx();
        let mut count = 0u64;
        let mut cur = next_heap.root(&mut ctx2);
        while !cur.is_null() {
            count += 1;
            cur = next_heap.load_ref(&mut ctx2, cur, 0);
        }
        assert_eq!(count, expected_count, "generation {generation}");
        heap = next_heap;
    }
}
