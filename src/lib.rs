//! Umbrella crate for the FFCCD reproduction: re-exports the substrate
//! crates so integration tests and examples can use one dependency.

pub use ffccd;
pub use ffccd_arch as arch;
pub use ffccd_pmem as pmem;
pub use ffccd_pmop as pmop;
pub use ffccd_workloads as workloads;
