//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: `Strategy` (with `prop_map`/`prop_filter`/`boxed`), `Just`,
//! integer/float range strategies, tuple strategies, `any::<T>()`,
//! `proptest::collection::vec`, weighted `prop_oneof!`, the `proptest!`
//! test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Differences from real proptest, on purpose:
//! - **No shrinking.** On failure the harness panics with the case number
//!   and the exact per-case seed; re-running is deterministic, so the seed
//!   plus the test name *is* the reproducer.
//! - **Deterministic seeding.** The base seed is derived from the test's
//!   module path (stable across runs and machines) unless the
//!   `PROPTEST_SEED` environment variable overrides it — CI failures
//!   reproduce locally without a regressions file.
//! - `.proptest-regressions` files are ignored.

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Per-case random source handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values. Object-safe: combinators carry `Self: Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "proptest shim: filter '{}' rejected 1000 consecutive values",
            self.reason
        );
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// Integer and float ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `any::<T>()` — full-domain strategy for primitives.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Weighted union backing `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights zero");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bound accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Accepted for source compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let base_seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .trim()
                .parse::<u64>()
                .or_else(|_| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16))
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be decimal or 0x-hex, got {s:?}")),
            Err(_) => {
                // FNV-1a over the test path: stable across runs/machines.
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            }
        };
        TestRunner {
            config,
            name,
            base_seed,
        }
    }

    /// Runs `case` for each seed; panics with a reproducer on failure.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            let case_seed = self.base_seed.wrapping_add(i as u64);
            let mut rng = TestRng::from_seed(case_seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(reason))) => {
                    panic!(
                        "proptest shim: {} failed at case {}/{} (PROPTEST_SEED={}): {}",
                        self.name, i, self.config.cases, case_seed, reason
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest shim: {} panicked at case {}/{} (PROPTEST_SEED={})",
                        self.name, i, self.config.cases, case_seed
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner = $crate::TestRunner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Strategies are built once; generation is per-case.
            let __strats = ($($strat,)+);
            __runner.run(|__rng| {
                #[allow(non_snake_case)]
                let ($($arg,)+) = $crate::Strategy::generate(&__strats, __rng);
                let mut __case =
                    || -> ::std::result::Result<(), $crate::TestCaseError> { $body Ok(()) };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Toy {
        A(u8),
        B,
    }

    fn toy() -> impl Strategy<Value = Toy> {
        prop_oneof![
            3 => (1u8..10).prop_map(Toy::A),
            1 => Just(Toy::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 1u8..=3, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(toy(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_hits_all_arms(v in crate::collection::vec(toy(), 64..65)) {
            // With weight 3:1 over 64 draws, both arms appear with
            // overwhelming probability under every deterministic seed.
            let a = v.iter().filter(|t| matches!(t, Toy::A(_))).count();
            prop_assert!(a > 0 && a < v.len());
        }
    }

    #[test]
    fn determinism_across_runners() {
        let s = toy();
        let mut r1 = TestRng::from_seed(99);
        let mut r2 = TestRng::from_seed(99);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
