//! Offline stand-in for `rand` 0.8, providing the API surface the workspace
//! uses: `rngs::SmallRng`, `Rng::{gen, gen_range, gen_bool, fill}` and
//! `SeedableRng::{seed_from_u64, from_entropy}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically plenty for a simulator's fault schedules and key
//! streams. `from_entropy` derives its seed from the system clock so the
//! crate stays dependency-free.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
    }
}

/// Types producible from a uniform `u64` stream (the `Standard`
/// distribution of real rand, reduced to what this workspace samples).
pub trait Uniform: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn from_rng(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range shape `gen_range` accepts (rand 0.8's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait (rand's `Rng`).
pub trait Rng: RngCore {
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding trait (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(t ^ (&t as *const _ as u64))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — same niche as rand's `SmallRng`: small, fast,
    /// deterministic, not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but belt and braces:
            if s == [0; 4] {
                s[0] = 0xDEAD_BEEF_CAFE_F00D;
            }
            SmallRng { s }
        }
    }
}

pub use rngs::SmallRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = r.gen_range(10..=10);
            assert_eq!(y, 10);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
