//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (for
//! forward-compat with tooling that might dump stats as JSON); nothing in
//! the tree calls a serializer. The traits are therefore empty markers and
//! the derives expand to nothing. Code that tries to actually serialize
//! will fail to compile, which is the gate we want while the build has no
//! network access.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Matches serde's `de` module far enough for `serde::de::DeserializeOwned`
/// bounds, should any appear.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
