//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on stats/config structs
//! but never invokes a serializer (there is no serde_json or similar in the
//! dependency tree), so the derives only need to parse — they expand to
//! nothing. If a future PR adds real serialization it must vendor the real
//! serde; this shim will make that need loud by failing to compile such
//! code rather than corrupting data.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
