//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `parking_lot` to this crate. Only the API surface the workspace actually
//! uses is provided: non-poisoning `Mutex` / `RwLock` whose `lock` / `read` /
//! `write` return guards directly (poison is swallowed by taking the inner
//! value, matching parking_lot's panic-transparent semantics closely enough
//! for a deterministic simulator).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock supporting `read_recursive`, which parking_lot
/// guarantees never deadlocks when the calling thread already holds a read
/// guard (std's `RwLock` may, if a writer is queued). `read` yields to
/// queued writers (fairness), while `read_recursive` only waits for an
/// *active* writer.
///
/// The uncontended paths are a single CAS on one state word. An earlier
/// version guarded a readers/writers struct with `Mutex`+`Condvar`; its
/// guard *drop* then locked the mutex again and issued an unconditional
/// `notify_all` (a futex syscall) — ~175 ns per acquisition on the
/// simulator's per-bank engine locks, which sit on every simulated memory
/// access and dominated host time. Waiters now park on the condvar only
/// under contention, and releasers touch it only when `parked > 0`.
///
/// State word layout: bit 0 = writer active; bits 1..21 = waiting-writer
/// count (new plain `read`s queue behind these); bits 21..64 = reader
/// count.
pub struct RwLock<T: ?Sized> {
    state: sync::atomic::AtomicU64,
    /// Threads registered in the slow path (readers or writers). Releasers
    /// check this before touching the condvar, so uncontended drops stay
    /// syscall-free. Registration happens while holding `park_lock`, and
    /// both sides use `SeqCst`, so a releaser either sees the waiter's
    /// registration or the waiter's state re-check sees the release.
    parked: sync::atomic::AtomicU32,
    park_lock: sync::Mutex<()>,
    park_cond: sync::Condvar,
    data: std::cell::UnsafeCell<T>,
}

const WRITER: u64 = 1;
const WWAIT_ONE: u64 = 1 << 1;
const WWAIT_MASK: u64 = ((1 << 20) - 1) << 1;
const READER_ONE: u64 = 1 << 21;
const READERS_MASK: u64 = !(WRITER | WWAIT_MASK);

use sync::atomic::Ordering::{Relaxed, SeqCst};

// Same bounds as std::sync::RwLock.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

pub struct RwLockReadGuard<'a, T: ?Sized>(&'a RwLock<T>);

pub struct RwLockWriteGuard<'a, T: ?Sized>(&'a RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            state: sync::atomic::AtomicU64::new(0),
            parked: sync::atomic::AtomicU32::new(0),
            park_lock: sync::Mutex::new(()),
            park_cond: sync::Condvar::new(),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut s = self.state.load(Relaxed);
        loop {
            if s & (WRITER | WWAIT_MASK) != 0 {
                self.read_slow(false);
                return RwLockReadGuard(self);
            }
            match self
                .state
                .compare_exchange_weak(s, s + READER_ONE, SeqCst, Relaxed)
            {
                Ok(_) => return RwLockReadGuard(self),
                Err(e) => s = e,
            }
        }
    }

    /// Like [`read`](Self::read) but does not queue behind waiting
    /// writers, so it may nest under an existing read guard on the same
    /// thread without deadlocking.
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        let mut s = self.state.load(Relaxed);
        loop {
            if s & WRITER != 0 {
                self.read_slow(true);
                return RwLockReadGuard(self);
            }
            match self
                .state
                .compare_exchange_weak(s, s + READER_ONE, SeqCst, Relaxed)
            {
                Ok(_) => return RwLockReadGuard(self),
                Err(e) => s = e,
            }
        }
    }

    /// Parks until a reader slot can be taken. With `barge` only an active
    /// writer blocks us (the `read_recursive` contract); otherwise waiting
    /// writers do too.
    fn read_slow(&self, barge: bool) {
        let mut guard = self.park_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.parked.fetch_add(1, SeqCst);
        loop {
            let s = self.state.load(SeqCst);
            let blocked = if barge {
                s & WRITER != 0
            } else {
                s & (WRITER | WWAIT_MASK) != 0
            };
            if !blocked {
                if self
                    .state
                    .compare_exchange(s, s + READER_ONE, SeqCst, SeqCst)
                    .is_ok()
                {
                    break;
                }
                continue;
            }
            guard = self
                .park_cond
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
        self.parked.fetch_sub(1, SeqCst);
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let mut s = self.state.load(Relaxed);
        loop {
            if s & WRITER != 0 {
                return None;
            }
            match self
                .state
                .compare_exchange_weak(s, s + READER_ONE, SeqCst, Relaxed)
            {
                Ok(_) => return Some(RwLockReadGuard(self)),
                Err(e) => s = e,
            }
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let s = self.state.load(Relaxed);
        if s & (WRITER | READERS_MASK) == 0
            && self
                .state
                .compare_exchange(s, s | WRITER, SeqCst, Relaxed)
                .is_ok()
        {
            return RwLockWriteGuard(self);
        }
        self.write_slow();
        RwLockWriteGuard(self)
    }

    fn write_slow(&self) {
        // Register as a waiting writer first so new plain `read`s queue
        // behind us, then park until the lock frees up.
        self.state.fetch_add(WWAIT_ONE, SeqCst);
        let mut guard = self.park_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.parked.fetch_add(1, SeqCst);
        loop {
            let s = self.state.load(SeqCst);
            if s & (WRITER | READERS_MASK) == 0 {
                if self
                    .state
                    .compare_exchange(s, (s - WWAIT_ONE) | WRITER, SeqCst, SeqCst)
                    .is_ok()
                {
                    break;
                }
                continue;
            }
            guard = self
                .park_cond
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
        self.parked.fetch_sub(1, SeqCst);
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let mut s = self.state.load(Relaxed);
        loop {
            if s & (WRITER | READERS_MASK) != 0 {
                return None;
            }
            match self
                .state
                .compare_exchange_weak(s, s | WRITER, SeqCst, Relaxed)
            {
                Ok(_) => return Some(RwLockWriteGuard(self)),
                Err(e) => s = e,
            }
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Wakes parked threads after a release. The `parked` check keeps the
    /// condvar (and its syscalls) entirely off the uncontended path.
    fn wake_parked(&self) {
        if self.parked.load(SeqCst) > 0 {
            let _g = self.park_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.park_cond.notify_all();
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        let prev = self.0.state.fetch_sub(READER_ONE, SeqCst);
        // Only the last reader leaving can unblock anyone (a writer).
        if prev & READERS_MASK == READER_ONE {
            self.0.wake_parked();
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.0.state.fetch_and(!WRITER, SeqCst);
        self.0.wake_parked();
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Sound: readers > 0 excludes any writer until this guard drops.
        unsafe { &*self.0.data.get() }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.0.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Sound: writer_active excludes all readers and other writers.
        unsafe { &mut *self.0.data.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_concurrent_stress() {
        use std::sync::Arc;
        // Writers increment both halves of a pair under the write lock;
        // readers must never observe a torn pair. Exercises the parking
        // slow paths and the wake protocol from both guard drops.
        let l = Arc::new(RwLock::new((0u64, 0u64)));
        let writers: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let mut g = l.write();
                        let pair: &mut (u64, u64) = &mut g;
                        pair.0 += 1;
                        pair.1 += 1;
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..3)
            .map(|i| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for k in 0..2000u64 {
                        let g = if (i + k) % 7 == 0 {
                            l.read_recursive()
                        } else {
                            l.read()
                        };
                        let pair: &(u64, u64) = &g;
                        assert_eq!(pair.0, pair.1, "torn read");
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*l.read(), (6000, 6000));
    }

    #[test]
    fn rwlock_try_paths() {
        let l = RwLock::new(5u32);
        let r = l.read();
        assert!(l.try_read().is_some(), "shared with reader");
        assert!(l.try_write().is_none(), "writer blocked by reader");
        drop(r);
        let w = l.try_write().expect("free for writer");
        assert!(l.try_read().is_none(), "reader blocked by writer");
        assert!(l.try_write().is_none(), "second writer blocked");
        drop(w);
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn rwlock_recursive_read_with_queued_writer() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(0u32));
        let outer = l.read();
        // A writer queues up in another thread...
        let l2 = Arc::clone(&l);
        let w = std::thread::spawn(move || {
            *l2.write() += 1;
        });
        // ...give it time to start waiting, then re-read recursively;
        // this must not deadlock.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let inner = l.read_recursive();
        assert_eq!(*inner, 0);
        drop(inner);
        drop(outer);
        w.join().unwrap();
        assert_eq!(*l.read(), 1);
    }
}
