//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `parking_lot` to this crate. Only the API surface the workspace actually
//! uses is provided: non-poisoning `Mutex` / `RwLock` whose `lock` / `read` /
//! `write` return guards directly (poison is swallowed by taking the inner
//! value, matching parking_lot's panic-transparent semantics closely enough
//! for a deterministic simulator).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock supporting `read_recursive`, which parking_lot
/// guarantees never deadlocks when the calling thread already holds a read
/// guard (std's `RwLock` may, if a writer is queued). Built on
/// Mutex+Condvar: `read` yields to queued writers (fairness), while
/// `read_recursive` only waits for an *active* writer.
pub struct RwLock<T: ?Sized> {
    state: sync::Mutex<RwState>,
    cond: sync::Condvar,
    data: std::cell::UnsafeCell<T>,
}

#[derive(Default)]
struct RwState {
    readers: usize,
    writer_active: bool,
    writers_waiting: usize,
}

// Same bounds as std::sync::RwLock.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

pub struct RwLockReadGuard<'a, T: ?Sized>(&'a RwLock<T>);

pub struct RwLockWriteGuard<'a, T: ?Sized>(&'a RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            state: sync::Mutex::new(RwState {
                readers: 0,
                writer_active: false,
                writers_waiting: 0,
            }),
            cond: sync::Condvar::new(),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn state(&self) -> sync::MutexGuard<'_, RwState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut st = self.state();
        while st.writer_active || st.writers_waiting > 0 {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.readers += 1;
        RwLockReadGuard(self)
    }

    /// Like [`read`](Self::read) but does not queue behind waiting
    /// writers, so it may nest under an existing read guard on the same
    /// thread without deadlocking.
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        let mut st = self.state();
        while st.writer_active {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.readers += 1;
        RwLockReadGuard(self)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let mut st = self.state();
        if st.writer_active {
            return None;
        }
        st.readers += 1;
        Some(RwLockReadGuard(self))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let mut st = self.state();
        st.writers_waiting += 1;
        while st.writer_active || st.readers > 0 {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.writers_waiting -= 1;
        st.writer_active = true;
        RwLockWriteGuard(self)
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let mut st = self.state();
        if st.writer_active || st.readers > 0 {
            return None;
        }
        st.writer_active = true;
        Some(RwLockWriteGuard(self))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        let mut st = self.0.state();
        st.readers -= 1;
        if st.readers == 0 {
            drop(st);
            self.0.cond.notify_all();
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        let mut st = self.0.state();
        st.writer_active = false;
        drop(st);
        self.0.cond.notify_all();
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Sound: readers > 0 excludes any writer until this guard drops.
        unsafe { &*self.0.data.get() }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.0.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Sound: writer_active excludes all readers and other writers.
        unsafe { &mut *self.0.data.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_recursive_read_with_queued_writer() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(0u32));
        let outer = l.read();
        // A writer queues up in another thread...
        let l2 = Arc::clone(&l);
        let w = std::thread::spawn(move || {
            *l2.write() += 1;
        });
        // ...give it time to start waiting, then re-read recursively;
        // this must not deadlock.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let inner = l.read_recursive();
        assert_eq!(*inner, 0);
        drop(inner);
        drop(outer);
        w.join().unwrap();
        assert_eq!(*l.read(), 1);
    }
}
