//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a deliberately
//! simple measurement loop: warm up briefly, then time batches until the
//! measurement window closes, and print mean ns/iter. No statistics, no
//! HTML reports, no comparison against saved baselines.
//!
//! When the binary is invoked with `--test` (as `cargo test --benches`
//! does), every benchmark runs exactly one iteration, so CI smoke-checks
//! the code paths without paying measurement time.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim treats all variants alike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[derive(Clone, Debug)]
pub struct Config {
    pub sample_size: usize,
    pub measurement_time: Duration,
    pub warm_up_time: Duration,
    pub test_mode: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.config.clone();
        run_one("", &id.into().0, &config, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().0, &self.config, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().0, &self.config, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Bencher {
    config: Config,
    /// (iterations, elapsed) accumulated by the last `iter*` call.
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.config.test_mode {
            black_box(routine());
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        // Warm-up: run until the warm-up window closes.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_until {
            black_box(routine());
            warm_iters += 1;
        }
        // Measure in batches sized from the warm-up rate.
        let batch = warm_iters.clamp(1, 1 << 20);
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.config.measurement_time {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.measured = Some((iters, start.elapsed()));
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.config.test_mode {
            black_box(routine(setup()));
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        let window = Instant::now();
        while window.elapsed() < self.config.measurement_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            iters += 1;
        }
        self.measured = Some((iters, spent));
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size)
    }
}

fn run_one<F>(group: &str, id: &str, config: &Config, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        config: config.clone(),
        measured: None,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match b.measured {
        Some((iters, elapsed)) if iters > 0 && !config.test_mode => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<40} {ns:>12.1} ns/iter ({iters} iters)");
        }
        _ => println!("{label:<40} ok (test mode)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Config {
        Config {
            sample_size: 2,
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
            test_mode: false,
        }
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            config: tiny_config(),
            measured: None,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        let (iters, _) = b.measured.expect("measured");
        assert!(iters > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.config.measurement_time = Duration::from_millis(2);
        c.config.warm_up_time = Duration::from_millis(1);
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(2));
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
