//! The Redis case study at example scale: an LRU-bounded cache whose
//! expiry churn fragments the heap, compared across PMDK (no defrag),
//! stop-the-world compaction, and FFCCD — including the tail-latency cost
//! of the STW pauses (paper §7.4).
//!
//! Run with: `cargo run --release --example redis_cache`

use ffccd::{DefragConfig, DefragHeap, Scheme};
use ffccd_pmem::MachineConfig;
use ffccd_pmop::PoolConfig;
use ffccd_workloads::redis::RedisLru;
use ffccd_workloads::util::KeyGen;

fn run_cache(label: &str, scheme: Scheme, stw: bool) {
    let cfg = if scheme == Scheme::Baseline {
        DefragConfig::baseline()
    } else {
        DefragConfig {
            min_live_bytes: 1 << 13,
            ..DefragConfig::normal(scheme)
        }
    };
    let pool = PoolConfig {
        data_bytes: 32 << 20,
        os_page_size: 4096,
        machine: MachineConfig::default(),
    };
    let heap = DefragHeap::create(pool, RedisLru::registry(), cfg).expect("pool");
    let mut ctx = heap.ctx();
    let mut gc_ctx = heap.ctx();
    let mut redis = RedisLru::new(512 << 10); // 512 KiB live cap
    redis.setup(&heap, &mut ctx);
    let mut keys = KeyGen::new(42);
    let mut latencies = Vec::new();
    for i in 0..4000u64 {
        let t0 = ctx.cycles();
        let k = keys.fresh();
        redis.set(&heap, &mut ctx, k, keys.value_size(240, 492));
        let mut cycles = ctx.cycles() - t0;
        if stw {
            if i % 256 == 0 && heap.pool().stats().frag_ratio > 1.5 {
                let (pause, _) = heap.stw_compact(&mut ctx);
                cycles += pause;
            }
        } else if heap.in_cycle() {
            heap.step_compaction(&mut gc_ctx, 16);
        } else if i % 32 == 0 {
            heap.maybe_defrag(&mut gc_ctx);
        }
        latencies.push(cycles);
    }
    heap.exit(&mut gc_ctx);
    redis.validate(&heap, &mut ctx).expect("cache consistent");
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let st = heap.pool().stats();
    println!(
        "{label:<18} footprint {:>6} KiB  fragR {:>5.2}  latency p50/p99/max = {}/{}/{} cycles",
        st.footprint_bytes >> 10,
        st.frag_ratio,
        pct(0.5),
        pct(0.99),
        pct(1.0)
    );
}

fn main() {
    println!("LRU cache: 4000 SETs of 240-492 B values, 512 KiB live cap.\n");
    run_cache("PMDK (no defrag)", Scheme::Baseline, false);
    run_cache("STW compaction", Scheme::Baseline, true);
    run_cache("FFCCD", Scheme::FfccdCheckLookup, false);
    println!("\nSTW matches FFCCD's footprint but pays for it in p99/max latency —");
    println!("the pause of a full-heap compaction lands on one unlucky request.");
}
