//! Fault-injection tour: crash an AVL tree mid-compaction under every
//! scheme and watch each recovery discipline do its thing.
//!
//! Run with: `cargo run --release --example crash_recovery`

use ffccd::Scheme;
use ffccd_pmem::MachineConfig;
use ffccd_pmop::PoolConfig;
use ffccd_workloads::driver::{DriverConfig, PhaseMix};
use ffccd_workloads::faults::run_fault_injection;
use ffccd_workloads::AvlTree;

fn main() {
    println!("Injecting crashes into an AVL tree under each crash-consistent scheme.");
    println!("Each crash image is restarted, recovered, and validated twice:");
    println!("GC metadata consistency + tree topology/key-set consistency (§7.1).\n");
    for scheme in [
        Scheme::Espresso,
        Scheme::Sfccd,
        Scheme::FfccdFenceFree,
        Scheme::FfccdCheckLookup,
    ] {
        let mut cfg = DriverConfig::new(scheme);
        cfg.mix = PhaseMix {
            init: 800,
            phase_ops: 600,
            phases: 3,
        };
        cfg.pool = PoolConfig {
            data_bytes: 16 << 20,
            os_page_size: 4096,
            machine: MachineConfig::default(),
        };
        cfg.defrag.min_live_bytes = 1 << 12;
        let mut w = AvlTree::new();
        let report = run_fault_injection(
            &mut w,
            &|| Box::new(AvlTree::new()),
            scheme,
            0xC4A5,
            8,
            &cfg,
        );
        println!(
            "{:<22} {} injections, {} mid-cycle, {} objects finished by recovery, \
             {} undone, {}",
            scheme.label(),
            report.injections,
            report.mid_cycle,
            report.recovered_objects,
            report.undone_objects,
            if report.failures.is_empty() {
                "ALL CONSISTENT".to_owned()
            } else {
                format!("{} FAILURES: {:?}", report.failures.len(), report.failures)
            }
        );
        assert!(report.failures.is_empty());
    }
    println!("\nNote the scheme signatures: Espresso never needs undo (two fences);");
    println!("SFCCD re-copies mismatched objects (one fence); the FFCCD schemes are");
    println!("the only ones that *undo* relocations — objects whose copies never");
    println!("reached the persistence domain (the reached bitmap proves it).");
}
