//! A key-value store aging over its lifetime, with and without FFCCD.
//!
//! Reproduces the paper's motivating scenario at example scale: the same
//! pmemkv-style store runs the same churn twice — once on the baseline
//! allocator (footprint only ever grows) and once with FFCCD (footprint
//! tracks the live set). Prints a side-by-side fragmentation trace.
//!
//! Run with: `cargo run --release --example kvstore_defrag`

use ffccd::Scheme;
use ffccd_pmem::MachineConfig;
use ffccd_pmop::PoolConfig;
use ffccd_workloads::driver::{run, DriverConfig, PhaseMix};
use ffccd_workloads::Pmemkv;

fn config(scheme: Scheme) -> DriverConfig {
    let mut cfg = DriverConfig::new(scheme);
    cfg.mix = PhaseMix {
        init: 4000,
        phase_ops: 3000,
        phases: 3,
    };
    cfg.pool = PoolConfig {
        data_bytes: 32 << 20,
        os_page_size: 4096,
        machine: MachineConfig::default(),
    };
    cfg.defrag.min_live_bytes = 1 << 13;
    cfg
}

fn main() {
    println!("pmemkv churn: 4000 inserts, then 3000-op delete/insert/delete phases\n");
    let baseline = run(&mut Pmemkv::new(), &config(Scheme::Baseline));
    let ffccd = run(&mut Pmemkv::new(), &config(Scheme::FfccdCheckLookup));

    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "op", "baseline(KiB)", "ffccd(KiB)", "live(KiB)"
    );
    let n = baseline.samples.len().min(ffccd.samples.len());
    for i in (0..n).step_by((n / 20).max(1)) {
        println!(
            "{:>8} {:>14} {:>14} {:>10}",
            baseline.samples[i].op,
            baseline.samples[i].footprint >> 10,
            ffccd.samples[i].footprint >> 10,
            baseline.samples[i].live >> 10,
        );
    }
    println!();
    println!(
        "average footprint: baseline {:.0} KiB vs FFCCD {:.0} KiB",
        baseline.avg_footprint / 1024.0,
        ffccd.avg_footprint / 1024.0
    );
    println!(
        "fragmentation reduction (paper Eq. 1): {:.1}%",
        ffccd.fragmentation_reduction_vs(&baseline)
    );
    println!(
        "execution time overhead: {:.1}% ({} cycles vs {})",
        (ffccd.app_cycles as f64 / baseline.app_cycles as f64 - 1.0) * 100.0,
        ffccd.app_cycles,
        baseline.app_cycles
    );
    println!(
        "defragmentation: {} cycles, {} objects relocated, {} frames released",
        ffccd.gc.cycles_completed, ffccd.gc.objects_relocated, ffccd.gc.frames_released
    );
}
