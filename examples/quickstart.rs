//! Quickstart: create a defragmenting persistent heap, fragment it, watch
//! FFCCD compact it, crash it, recover it.
//!
//! Run with: `cargo run --release --example quickstart`

use ffccd::{validate_heap, DefragConfig, DefragHeap, Scheme};
use ffccd_pmem::MachineConfig;
use ffccd_pmop::{PmPtr, PoolConfig, TypeDesc, TypeId, TypeRegistry};

// A persistent list node: next pointer at offset 0, key at 8, 112 bytes of
// payload after that.
const NODE: TypeId = TypeId(0);
const NEXT: u64 = 0;
const KEY: u64 = 8;
const NODE_SIZE: u64 = 128;

fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    reg.register(TypeDesc::new("node", NODE_SIZE as u32, &[NEXT as u32]));
    reg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. init(): a 16 MiB pool with FFCCD defragmentation armed at the
    //    paper's normal thresholds (trigger fragR 1.5, target 1.25).
    let pool_cfg = PoolConfig {
        data_bytes: 16 << 20,
        os_page_size: 4096,
        machine: MachineConfig::default(),
    };
    let cfg = DefragConfig {
        min_live_bytes: 1 << 12,
        ..DefragConfig::normal(Scheme::FfccdCheckLookup)
    };
    let heap = DefragHeap::create(pool_cfg, registry(), cfg)?;
    let mut ctx = heap.ctx();

    // 2. Build a 2000-node list, then delete 80% of it — the classic
    //    fragmentation pattern: many pages, few survivors on each.
    let mut nodes = Vec::new();
    for i in 0..2000u64 {
        let n = heap.alloc(&mut ctx, NODE, NODE_SIZE)?;
        heap.write_u64(&mut ctx, n, KEY, i);
        let head = heap.root(&mut ctx);
        heap.store_ref(&mut ctx, n, NEXT, head);
        heap.persist(&mut ctx, n, 0, NODE_SIZE);
        heap.set_root(&mut ctx, n);
        nodes.push(n);
    }
    // Unlink+free every node with key % 5 != 0.
    let mut prev = PmPtr::NULL;
    let mut cur = heap.root(&mut ctx);
    while !cur.is_null() {
        let next = heap.load_ref(&mut ctx, cur, NEXT);
        if heap.read_u64(&mut ctx, cur, KEY) % 5 != 0 {
            if prev.is_null() {
                heap.set_root(&mut ctx, next);
            } else {
                heap.store_ref(&mut ctx, prev, NEXT, next);
            }
            heap.free(&mut ctx, cur)?;
        } else {
            prev = cur;
        }
        cur = next;
    }
    let before = heap.pool().stats();
    println!(
        "fragmented: footprint {} KiB, live {} KiB, fragR {:.2}",
        before.footprint_bytes >> 10,
        before.live_bytes >> 10,
        before.frag_ratio
    );

    // 3. The monitor hook notices the fragmentation and starts a cycle;
    //    drive the concurrent compactor to completion.
    assert!(heap.maybe_defrag(&mut ctx), "fragR above trigger");
    while heap.step_compaction(&mut ctx, 64) {}
    // Cycles are incremental (bounded pages per cycle); keep going while
    // the monitor still sees fragmentation above the trigger.
    while heap.maybe_defrag(&mut ctx) {
        while heap.step_compaction(&mut ctx, 64) {}
    }
    let after = heap.pool().stats();
    println!(
        "defragmented: footprint {} KiB, fragR {:.2} ({} objects moved, {} frames released)",
        after.footprint_bytes >> 10,
        after.frag_ratio,
        heap.gc_stats().objects_relocated,
        heap.gc_stats().frames_released,
    );
    assert!(after.footprint_bytes < before.footprint_bytes);

    // 4. Fragment again, start a cycle — and crash in the middle of it.
    let mut ctx = heap.ctx();
    heap.defrag_now(&mut ctx);
    heap.step_compaction(&mut ctx, 10); // move a few objects, then pull the plug
    let image = heap.engine().crash_image();
    println!(
        "crashed mid-compaction (cycle in flight: {})",
        heap.in_cycle()
    );

    // 5. recovery(): the reached bitmap tells recovery which objects made
    //    it to persistence; everything else is finished or undone.
    let (heap2, report) = DefragHeap::open_recovered(&image, registry(), cfg)?;
    println!(
        "recovered: {} durable, {} finished, {} undone, {} refs fixed",
        report.already_durable, report.finished, report.undone, report.refs_fixed
    );
    validate_heap(&heap2).map_err(|e| format!("validation failed: {e:?}"))?;

    // 6. The data survived: count the list.
    let mut ctx2 = heap2.ctx();
    let mut count = 0;
    let mut cur = heap2.root(&mut ctx2);
    while !cur.is_null() {
        count += 1;
        cur = heap2.load_ref(&mut ctx2, cur, NEXT);
    }
    println!("list intact after crash + recovery: {count} nodes (expected 400)");
    assert_eq!(count, 400);
    Ok(())
}
